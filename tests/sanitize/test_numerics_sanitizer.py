"""Numerics sanitizer: NaN/Inf tripwires and energy-blowup detection."""

import numpy as np
import pytest

from repro.cosmology import PLANCK18, zeldovich_ics
from repro.core.particles import make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig
from repro.sanitize import (
    NumericsError,
    NumericsSanitizer,
    kinetic_internal_energy,
)


class TestCheckFinite:
    def test_nan_names_step_phase_array_and_index(self):
        san = NumericsSanitizer(context="unit")
        vel = np.zeros((4, 3))
        vel[2, 1] = np.nan
        with pytest.raises(NumericsError) as exc:
            san.check_finite(7, "closing half-kick", pos=np.zeros((4, 3)),
                             vel=vel)
        msg = str(exc.value)
        assert "unit" in msg and "step 7" in msg
        assert "'closing half-kick'" in msg
        assert "'vel'" in msg
        assert "flat index 7" in msg  # (2, 1) -> 2*3 + 1

    def test_inf_is_caught_too(self):
        san = NumericsSanitizer()
        with pytest.raises(NumericsError):
            san.check_finite(0, "p", u=np.array([1.0, np.inf]))

    def test_clean_and_skipped_arrays(self):
        san = NumericsSanitizer()
        san.check_finite(0, "p", pos=np.ones((3, 3)), ids=np.arange(3),
                         missing=None)
        assert san.n_checks == 1


class TestCheckEnergy:
    def test_jump_beyond_tol_raises(self):
        san = NumericsSanitizer(jump_tol=100.0)
        san.check_energy(0, 1.0)
        san.check_energy(1, 50.0)  # 50x: within tolerance
        with pytest.raises(NumericsError) as exc:
            san.check_energy(2, 50.0 * 101.0)
        assert "blowup" in str(exc.value)

    def test_nonfinite_energy_raises(self):
        san = NumericsSanitizer()
        with pytest.raises(NumericsError):
            san.check_energy(0, float("nan"))

    def test_first_step_never_flags(self):
        NumericsSanitizer(jump_tol=2.0).check_energy(0, 1e30)

    def test_kinetic_internal_energy(self):
        mass = np.array([2.0, 3.0])
        vel = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
        u = np.array([0.5, 1.0])
        expected = 0.5 * (2 * 1 + 3 * 4) + (2 * 0.5 + 3 * 1.0)
        assert kinetic_internal_energy(mass, vel, u) == pytest.approx(expected)
        assert kinetic_internal_energy(mass, vel) == pytest.approx(7.0)


def _small_sim(sanitize):
    box = 20.0
    ics = zeldovich_ics(5, box, PLANCK18, a_init=0.25, seed=11)
    parts = make_gas_dm_pair(
        ics.positions, ics.velocities, ics.particle_mass,
        PLANCK18.omega_b, PLANCK18.omega_m, u_init=20.0, box=box,
    )
    cfg = SimulationConfig(
        box=box, pm_grid=12, a_init=0.25, a_final=0.3, n_pm_steps=2,
        cosmo=PLANCK18, max_rung=2, sanitize=sanitize,
    )
    return Simulation(cfg, parts)


class TestSerialDriver:
    def test_clean_run_is_bit_identical_to_unsanitized(self):
        plain = _small_sim(sanitize=False)
        checked = _small_sim(sanitize=True)
        plain.run()
        checked.run()
        assert checked.nsan.n_checks > 0
        assert np.array_equal(plain.particles.pos, checked.particles.pos)
        assert np.array_equal(plain.particles.vel, checked.particles.vel)
        assert np.array_equal(plain.particles.u, checked.particles.u)

    def test_nan_injected_mid_run_is_caught_at_next_boundary(self):
        sim = _small_sim(sanitize=True)
        sim.pm_step()
        sim.particles.u[3] = np.nan  # corruption between steps
        with pytest.raises(NumericsError) as exc:
            sim.pm_step()
        msg = str(exc.value)
        assert "'u'" in msg and "opening forces" in msg

    def test_nan_velocity_is_caught(self):
        sim = _small_sim(sanitize=True)
        sim.particles.vel[0, 0] = np.inf
        with pytest.raises(NumericsError) as exc:
            sim.pm_step()
        assert "'vel'" in str(exc.value) or "'dp_" in str(exc.value)

    def test_unsanitized_run_does_not_check(self):
        sim = _small_sim(sanitize=False)
        assert sim.nsan is None
        sim.particles.u[0] = np.nan
        sim.pm_step()  # garbage propagates silently — the sanitizer's point
