"""Lint engine mechanics: pragmas, baselines, reporting, rule registry."""

import json

import pytest

from repro.sanitize import (
    Finding,
    LintEngine,
    apply_baseline,
    default_rules,
    get_rules,
    load_baseline,
    render_json,
    render_text,
    rule_names,
    subtract_baseline,
    write_baseline,
)
from repro.sanitize.engine import parse_file


def _lint(tmp_path, source, name="mod.py", rules=None):
    f = tmp_path / name
    f.parent.mkdir(parents=True, exist_ok=True)
    f.write_text(source)
    engine = LintEngine(rules=rules, root=str(tmp_path))
    return engine.lint_paths([str(f)])


SCATTER_SRC = "import numpy as np\nnp.add.at(a, i, v)\n"


class TestPragmas:
    def test_finding_without_pragma(self, tmp_path):
        result = _lint(tmp_path, SCATTER_SRC)
        assert [f.rule for f in result.findings] == ["scatter"]
        assert result.findings[0].line == 2
        assert not result.clean

    def test_same_line_pragma_suppresses(self, tmp_path):
        src = "import numpy as np\nnp.add.at(a, i, v)  # sanitize: allow-scatter\n"
        result = _lint(tmp_path, src)
        assert result.clean
        assert result.n_suppressed == 1

    def test_line_above_pragma_suppresses(self, tmp_path):
        src = "import numpy as np\n# sanitize: allow-scatter\nnp.add.at(a, i, v)\n"
        result = _lint(tmp_path, src)
        assert result.clean
        assert result.n_suppressed == 1

    def test_pragma_inside_multiline_statement_suppresses(self, tmp_path):
        src = (
            "import numpy as np\n"
            "np.add.at(  # sanitize: allow-scatter\n"
            "    a,\n"
            "    i,\n"
            "    v,\n"
            ")\n"
        )
        result = _lint(tmp_path, src)
        assert result.clean

    def test_file_pragma_suppresses_everywhere(self, tmp_path):
        src = (
            "# sanitize: allow-file-scatter\n"
            "import numpy as np\n"
            "np.add.at(a, i, v)\n"
            "np.maximum.at(b, j, w)\n"
        )
        result = _lint(tmp_path, src)
        assert result.clean
        assert result.n_suppressed == 2

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        src = "import numpy as np\nnp.add.at(a, i, v)  # sanitize: allow-determinism\n"
        result = _lint(tmp_path, src)
        assert [f.rule for f in result.findings] == ["scatter"]

    def test_multiple_rules_in_one_pragma(self, tmp_path):
        src = (
            "import numpy as np\n"
            "# sanitize: allow-scatter, allow-determinism\n"
            "np.add.at(a, i, np.random.rand(3))\n"
        )
        result = _lint(tmp_path, src)
        assert result.clean
        assert result.n_suppressed == 2


class TestPragmaSpanEdges:
    """FileContext.allowed at the edges of its line-range logic."""

    def _ctx(self, tmp_path, source):
        f = tmp_path / "m.py"
        f.write_text(source)
        return parse_file(str(f), root=str(tmp_path))

    def test_interior_line_of_multiline_span_counts(self, tmp_path):
        ctx = self._ctx(tmp_path, (
            "x = (\n"
            "    1 +\n"
            "    2  # sanitize: allow-myrule\n"
            ")\n"
        ))
        assert ctx.allowed("myrule", 1, 4)
        # a later, disjoint statement is not covered
        assert not ctx.allowed("myrule", 5, 6)

    def test_engine_honors_interior_argument_pragma(self, tmp_path):
        result = _lint(tmp_path, (
            "import numpy as np\n"
            "np.add.at(\n"
            "    a,\n"
            "    i,  # sanitize: allow-scatter\n"
            "    v,\n"
            ")\n"
        ))
        assert result.clean and result.n_suppressed == 1

    def test_pragma_above_decorator_covers_decorated_span(self, tmp_path):
        ctx = self._ctx(tmp_path, (
            "# sanitize: allow-myrule\n"
            "@deco\n"
            "def f():\n"
            "    pass\n"
        ))
        # a finding spanning the decorator line is suppressed ...
        assert ctx.allowed("myrule", 2, 4)
        # ... but one anchored at the bare def line is not: the pragma
        # must sit directly above the finding's anchor line
        assert not ctx.allowed("myrule", 3, 4)

    def test_inverted_end_line_falls_back_to_anchor(self, tmp_path):
        ctx = self._ctx(tmp_path, "a = 1\n# sanitize: allow-myrule\nb = 2\n")
        # end_line < line is treated as a single-line statement
        assert ctx.allowed("myrule", 3, 1)
        assert not ctx.allowed("myrule", 5, 1)

    def test_file_pragma_and_line_pragma_interact_per_rule(self, tmp_path):
        ctx = self._ctx(tmp_path, (
            "# sanitize: allow-file-scatter\n"
            "a = 1\n"
            "b = 2  # sanitize: allow-determinism\n"
            "c = 3\n"
        ))
        # file pragma: scatter allowed everywhere, even off-pragma lines
        assert ctx.allowed("scatter", 4, 4)
        # line pragma: determinism only on (or just below) its own line
        assert ctx.allowed("determinism", 3, 3)
        assert ctx.allowed("determinism", 4, 4)  # pragma-above rule
        assert not ctx.allowed("determinism", 2, 2)


class TestEngineTraversal:
    def test_directory_walk_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        cache = tmp_path / "pkg" / "__pycache__"
        cache.mkdir()
        (cache / "bad.py").write_text(SCATTER_SRC)
        result = LintEngine(root=str(tmp_path)).lint_paths([str(tmp_path)])
        assert result.clean
        assert result.n_files == 1

    def test_missing_path_is_an_error(self, tmp_path):
        result = LintEngine().lint_paths([str(tmp_path / "nope.py")])
        assert not result.clean
        assert result.errors and "no such file" in result.errors[0][1]

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        f = tmp_path / "broken.py"
        f.write_text("def f(:\n")
        result = LintEngine().lint_paths([str(f)])
        assert not result.clean
        assert "parse error" in result.errors[0][1]

    def test_findings_sorted_by_path_line(self, tmp_path):
        (tmp_path / "b.py").write_text(SCATTER_SRC)
        (tmp_path / "a.py").write_text(
            "import numpy as np\nx = 1\nnp.add.at(a, i, v)\n"
        )
        result = LintEngine(root=str(tmp_path)).lint_paths([str(tmp_path)])
        assert [(f.path, f.line) for f in result.findings] == [
            ("a.py", 3), ("b.py", 2),
        ]

    def test_parse_file_relativizes_paths(self, tmp_path):
        f = tmp_path / "sub" / "m.py"
        f.parent.mkdir()
        f.write_text("x = 1\n")
        ctx = parse_file(str(f), root=str(tmp_path))
        assert ctx.rel == "sub/m.py"


class TestRuleRegistry:
    def test_five_default_rules(self):
        assert len(default_rules()) >= 5
        assert set(rule_names()) >= {
            "scatter", "span-taxonomy", "clock-discipline",
            "determinism", "dtype-discipline",
        }

    def test_get_rules_subset_and_unknown(self):
        assert [r.name for r in get_rules(["scatter"])] == ["scatter"]
        # iterator inputs must not be silently exhausted
        assert [r.name for r in get_rules(iter(["scatter"]))] == ["scatter"]
        with pytest.raises(KeyError):
            get_rules(["no-such-rule"])


class TestBaseline:
    def test_roundtrip_suppresses_recorded_debt(self, tmp_path):
        result = _lint(tmp_path, SCATTER_SRC)
        debt = tmp_path / "debt.json"
        write_baseline(str(debt), result.findings)
        baseline = load_baseline(str(debt))
        fresh, n = subtract_baseline(result.findings, baseline)
        assert fresh == [] and n == 1

    def test_baseline_count_budget(self, tmp_path):
        f = Finding(rule="r", path="p.py", line=1, message="m")
        g = Finding(rule="r", path="p.py", line=9, message="m")
        debt = tmp_path / "debt.json"
        write_baseline(str(debt), [f])
        fresh, n = subtract_baseline([f, g], load_baseline(str(debt)))
        # one recorded occurrence: the second identical message is fresh
        assert n == 1 and len(fresh) == 1

    def test_baseline_stable_under_line_drift(self, tmp_path):
        f = Finding(rule="r", path="p.py", line=10, message="m")
        drifted = Finding(rule="r", path="p.py", line=99, message="m")
        debt = tmp_path / "debt.json"
        write_baseline(str(debt), [f])
        fresh, n = subtract_baseline([drifted], load_baseline(str(debt)))
        assert fresh == [] and n == 1

    def test_engine_applies_baseline(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(SCATTER_SRC)
        engine = LintEngine(root=str(tmp_path))
        first = engine.lint_paths([str(f)])
        debt = tmp_path / "debt.json"
        write_baseline(str(debt), first.findings)
        second = engine.lint_paths([str(f)], baseline=load_baseline(str(debt)))
        assert second.clean and second.n_baseline == 1

    def test_unsupported_version_rejected(self, tmp_path):
        debt = tmp_path / "debt.json"
        debt.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError):
            load_baseline(str(debt))


class TestStaleBaseline:
    def test_paid_off_debt_is_reported_stale(self):
        live = Finding(rule="r", path="p.py", line=1, message="m")
        baseline = {
            ("r", "p.py", "m"): 1,
            ("r", "gone.py", "fixed long ago"): 2,
        }
        fresh, n, stale = apply_baseline([live], baseline)
        assert fresh == [] and n == 1
        assert stale == [(("r", "gone.py", "fixed long ago"), 2)]

    def test_partially_used_budget_reports_the_remainder(self):
        live = Finding(rule="r", path="p.py", line=1, message="m")
        fresh, n, stale = apply_baseline([live], {("r", "p.py", "m"): 3})
        assert fresh == [] and n == 1
        assert stale == [(("r", "p.py", "m"), 2)]

    def test_fully_used_budget_is_not_stale(self):
        live = Finding(rule="r", path="p.py", line=1, message="m")
        fresh, n, stale = apply_baseline([live, live],
                                         {("r", "p.py", "m"): 2})
        assert fresh == [] and n == 2 and stale == []

    def test_engine_surfaces_stale_entries(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("x = 1\n")  # clean: the recorded debt is paid off
        debt = tmp_path / "debt.json"
        write_baseline(str(debt), [
            Finding(rule="scatter", path="mod.py", line=2, message="old"),
        ])
        engine = LintEngine(root=str(tmp_path))
        result = engine.lint_paths([str(f)], baseline=load_baseline(str(debt)))
        assert result.clean  # stale debt is a report, not a failure
        assert result.stale_baseline == [(("scatter", "mod.py", "old"), 1)]

    def test_reports_render_stale_entries(self, tmp_path):
        result = _lint(tmp_path, "x = 1\n")
        result.stale_baseline = [(("scatter", "mod.py", "old"), 1)]
        text = render_text(result, default_rules())
        assert "stale baseline entry" in text
        assert "--write-baseline" in text
        doc = json.loads(render_json(result, default_rules()))
        assert doc["stale_baseline"] == [{
            "rule": "scatter", "path": "mod.py", "message": "old",
            "unused_count": 1,
        }]

    def test_subtract_baseline_keeps_two_tuple_api(self):
        live = Finding(rule="r", path="p.py", line=1, message="m")
        fresh, n = subtract_baseline([live], {})
        assert fresh == [live] and n == 0


class TestReporting:
    def test_text_report_lists_findings(self, tmp_path):
        result = _lint(tmp_path, SCATTER_SRC)
        text = render_text(result, default_rules())
        assert "mod.py:2: [scatter]" in text
        assert "1 finding(s)" in text

    def test_text_report_clean(self, tmp_path):
        result = _lint(tmp_path, "x = 1\n")
        assert "OK" in render_text(result, default_rules())

    def test_json_report_shape(self, tmp_path):
        result = _lint(tmp_path, SCATTER_SRC)
        doc = json.loads(render_json(result, default_rules()))
        assert doc["clean"] is False
        assert doc["n_findings"] == 1
        assert doc["findings"][0]["rule"] == "scatter"
        assert doc["findings"][0]["path"] == "mod.py"
        assert len(doc["rules"]) == len(default_rules())
