"""Cross-validation: the static analyzer subsumes the runtime sanitizer.

Two directions of the same claim:

1. On deliberately-leaky fixtures, every post site the runtime
   :class:`CommSanitizer` reports when the code actually executes is
   also in the static ``request-lifecycle`` flagged-site set — the
   static pass never misses what a run would have caught.
2. On the shipped tree, the fault-injection suite's headline chaos run
   (the scenario of ``tests/resilience/``) ends with a clean runtime
   audit — zero unsettled requests, zero sanitizer findings — matching
   the static analyzer's zero findings on the seed: both sides agree
   the tree is comm-safe, so the superset relation holds there too.
"""

import importlib.util
import os
import re
import textwrap

import numpy as np
import pytest

from repro.parallel.comm import CommSanitizerError, World
from repro.sanitize.deep import deep_analyze

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src", "repro")

#: every function leaks at least one request on some executed path
LEAKY_FIXTURE = textwrap.dedent("""
    def leak_irecv(comm):
        if comm.rank == 0:
            comm.irecv(source=1, tag=99)
        comm.barrier()


    def leak_collective(comm):
        comm.iallreduce(float(comm.rank))


    def leak_on_early_return(comm, flag=True):
        req = comm.iallgather(1.0)
        if flag:
            return None
        return req.wait()
""").lstrip("\n")

_SITE = re.compile(r"posted at (.+?):(\d+)")


def _import_fixture(path):
    spec = importlib.util.spec_from_file_location("leaky_fixture", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _runtime_leak_sites(fn, path):
    """(basename, line) of every leaked-request site a live run reports."""
    with pytest.raises(CommSanitizerError) as exc:
        World(2, sanitize=True).run(fn)
    sites = set()
    for finding in exc.value.findings:
        if finding.kind != "leaked-request":
            continue
        m = _SITE.search(finding.message)
        assert m, finding.message
        assert os.path.basename(m.group(1)) == os.path.basename(path)
        sites.add(int(m.group(2)))
    assert sites, "runtime sanitizer caught nothing — fixture is broken"
    return sites


def test_static_flagged_sites_superset_of_runtime_catches(tmp_path):
    path = tmp_path / "leaky_fixture.py"
    path.write_text(LEAKY_FIXTURE)
    fixture = _import_fixture(str(path))

    runtime_sites = set()
    for fn in (fixture.leak_irecv, fixture.leak_collective,
               fixture.leak_on_early_return):
        runtime_sites |= _runtime_leak_sites(fn, str(path))

    res = deep_analyze([str(path)], root=str(tmp_path))
    static_sites = {
        f.line for f in res.findings if f.rule == "request-lifecycle"
    }
    missed = runtime_sites - static_sites
    assert not missed, (
        f"runtime caught post sites {sorted(missed)} the static "
        f"analyzer missed (static: {sorted(static_sites)})"
    )
    assert len(runtime_sites) == 3  # one leaked post per fixture function


def test_seed_tree_agrees_with_fault_injection_audit(tmp_path):
    """The chaos run of tests/resilience/ under armed sanitizers settles
    every in-flight request; the static pass agrees the tree is clean."""
    from repro.cosmology import PLANCK18
    from repro.parallel.distributed_sim import DistributedConfig
    from repro.resilience import (
        FaultPlan,
        RecoveryCoordinator,
        TieredCheckpointStore,
    )

    rng = np.random.default_rng(7)
    box = 120.0
    pos = np.mod(
        rng.uniform(0, box, size=(4, 3))[:, None, :]
        + rng.normal(0, 6.0, size=(4, 24, 3)), box
    ).reshape(-1, 3)
    vel = rng.normal(0, 50.0, size=pos.shape)
    mass = np.full(len(pos), 1.0e10)
    cfg = DistributedConfig(
        box=box, pm_grid=32, a_init=0.3, a_final=0.3 + 0.04 / 3 * 2,
        n_pm_steps=2, cosmo=PLANCK18, r_split_cells=0.75, max_rung=3,
        comm_mode="overlap", subcycle=True, sanitize=True,
    )
    store = TieredCheckpointStore(tmp_path, n_nodes=4)
    coord = RecoveryCoordinator(store)
    res = coord.run(cfg, 4, pos, vel, mass,
                    fault_plan=FaultPlan.single(rank=2, step=1, phase="rung"))

    # runtime side: the abort cascade settled everything it caught in
    # flight, and no lifecycle findings survived the run
    (rec,) = res.recoveries
    runtime_caught = rec.n_unsettled
    assert rec.n_requests > 0 and runtime_caught == 0
    assert coord.last_sim.world.sanitizer.findings == []

    # static side: zero findings over the same tree — a superset of the
    # (empty) runtime catch set
    static = deep_analyze([SRC], root=REPO)
    static_sites = {(f.path, f.line) for f in static.findings}
    assert static_sites >= set()  # trivially, but spelled out
    assert static.findings == [], "\n".join(
        f.render() for f in static.findings
    )
