"""Comm sanitizer: request-lifecycle and deadlock detection on World."""

import time

import numpy as np
import pytest

from repro.parallel.comm import CommError, CommSanitizerError, World


def _world(n=2):
    return World(n, sanitize=True)


def _finding_kinds(exc: CommSanitizerError):
    return {f.kind for f in exc.findings}


class TestLeakedRequest:
    def test_abandoned_irecv_is_reported(self):
        def fn(comm):
            if comm.rank == 0:
                comm.irecv(source=1, tag=99)  # dropped on the floor
            comm.barrier()

        with pytest.raises(CommSanitizerError) as exc:
            _world(2).run(fn)
        assert "leaked-request" in _finding_kinds(exc.value)
        f = [x for x in exc.value.findings if x.kind == "leaked-request"][0]
        assert f.rank == 0
        assert "irecv" in f.message and "never waited" in f.message

    def test_abandoned_collective_is_reported(self):
        def fn(comm):
            comm.iallreduce(float(comm.rank))  # never waited on any rank

        with pytest.raises(CommSanitizerError) as exc:
            _world(2).run(fn)
        kinds = [f.kind for f in exc.value.findings]
        assert kinds.count("leaked-request") == 2

    def test_cancel_settles_a_deliberately_dropped_request(self):
        def fn(comm):
            req = comm.irecv(source=(comm.rank + 1) % 2, tag=5)
            req.cancel()  # explicit error-path settlement

        _world(2).run(fn)  # no CommSanitizerError


class TestDoubleWait:
    def test_second_wait_is_reported(self):
        def fn(comm):
            req = comm.iallreduce(1.0)
            req.wait()
            req.wait()  # illegal re-wait

        with pytest.raises(CommSanitizerError) as exc:
            _world(2).run(fn)
        f = [x for x in exc.value.findings if x.kind == "double-wait"][0]
        assert "already-waited" in f.message

    def test_test_then_wait_is_legal(self):
        """Polling test() to completion then calling wait() once is the
        documented idiom and must not be flagged."""
        def fn(comm):
            other = (comm.rank + 1) % 2
            comm.isend(np.arange(4.0), other, tag=3).wait()
            req = comm.irecv(source=other, tag=3)
            while not req.test():
                time.sleep(0.001)
            return req.wait()

        out = _world(2).run(fn)
        np.testing.assert_array_equal(out[0], np.arange(4.0))


class TestMessageMismatch:
    def test_tag_mismatch_names_the_pending_irecv(self):
        def fn(comm):
            if comm.rank == 1:
                comm.send(np.ones(3), dest=0, tag=7)
            else:
                req = comm.irecv(source=1, tag=3)  # wrong tag: never matches
                time.sleep(0.2)
                req.cancel()

        with pytest.raises(CommSanitizerError) as exc:
            _world(2).run(fn)
        assert "unconsumed" in str(exc.value) or "tag" in str(exc.value)
        kinds = _finding_kinds(exc.value)
        assert "unconsumed-message" in kinds or "tag-mismatch" in kinds

    def test_pending_wrong_tag_irecv_reported_as_tag_mismatch(self):
        def fn(comm):
            if comm.rank == 1:
                comm.send(np.ones(3), dest=0, tag=7)
            else:
                comm.irecv(source=1, tag=3)  # leaked AND mistagged
                time.sleep(0.2)

        with pytest.raises(CommSanitizerError) as exc:
            _world(2).run(fn)
        kinds = _finding_kinds(exc.value)
        assert "leaked-request" in kinds and "tag-mismatch" in kinds
        f = [x for x in exc.value.findings if x.kind == "tag-mismatch"][0]
        assert "tag 7" in f.message and "tag 3" in f.message


class TestDeadlockDetection:
    def test_seeded_recv_cycle_is_caught_quickly(self):
        """Two ranks each waiting on the other with nothing in flight is
        a deadlock; the sanitizer reports it in well under the recv
        timeout (the poll tick is 50 ms, double-confirmed)."""
        def fn(comm):
            other = (comm.rank + 1) % 2
            return comm.irecv(source=other, tag=0).wait(timeout=30.0)

        t0 = time.perf_counter()
        with pytest.raises(CommError) as exc:
            _world(2).run(fn)
        elapsed = time.perf_counter() - t0
        assert "deadlock" in str(exc.value)
        assert "rank 0" in str(exc.value) and "rank 1" in str(exc.value)
        assert elapsed < 5.0

    def test_three_rank_cycle(self):
        def fn(comm):
            nxt = (comm.rank + 1) % 3
            return comm.irecv(source=nxt, tag=0).wait(timeout=30.0)

        with pytest.raises(CommError) as exc:
            _world(3).run(fn)
        assert "deadlock" in str(exc.value)

    def test_chain_that_resolves_is_not_flagged(self):
        """rank0 waits on rank1 which (after a beat spanning several poll
        ticks) sends — a transient wait must never be misreported."""
        def fn(comm):
            if comm.rank == 0:
                return comm.irecv(source=1, tag=0).wait()
            time.sleep(0.3)
            comm.send(123, dest=0, tag=0)
            return None

        out = _world(2).run(fn)
        assert out[0] == 123


class TestCleanRuns:
    def test_clean_exchange_reports_nothing(self):
        def fn(comm):
            other = (comm.rank + 1) % 2
            req = comm.isend(np.full(8, comm.rank, float), other, tag=1)
            got = comm.irecv(source=other, tag=1).wait()
            req.wait()
            comm.iallreduce(float(comm.rank)).wait()
            got2 = comm.alltoallv(
                [np.arange(3.0) for _ in range(comm.size)]
            )
            comm.barrier()
            return got.sum() + sum(g.sum() for g in got2)

        world = _world(2)
        out = world.run(fn)
        assert out[0] == out[1] or out is not None
        assert world.sanitizer.findings == []

    def test_sanitizer_state_resets_between_runs(self):
        world = _world(2)

        def leaky(comm):
            if comm.rank == 0:
                comm.irecv(source=1, tag=42)

        def clean(comm):
            comm.iallreduce(1.0).wait()

        with pytest.raises(CommSanitizerError):
            world.run(leaky)
        world.run(clean)  # previous run's leak must not resurface
