"""Distributed runs under the sanitizers: clean overlap runs are silent
and bit-identical; injected faults are caught with attribution."""

import numpy as np
import pytest

from repro.cosmology import PLANCK18, zeldovich_ics
from repro.parallel.comm import CommError
from repro.parallel.distributed_sim import DistributedConfig, DistributedSimulation


@pytest.fixture(scope="module")
def ic_setup():
    box = 100.0
    ics = zeldovich_ics(8, box, PLANCK18, a_init=0.2, seed=17)
    mass = np.full(8**3, ics.particle_mass)
    return box, ics.positions, ics.velocities, mass


def _config(box, **kw):
    defaults = dict(
        box=box, pm_grid=32, a_init=0.2, a_final=0.3, n_pm_steps=2,
        cosmo=PLANCK18, r_split_cells=1.0,
    )
    defaults.update(kw)
    return DistributedConfig(**defaults)


class TestCleanOverlapRun:
    def test_four_rank_overlap_run_is_clean_and_bit_identical(self, ic_setup):
        """The acceptance bar: a clean 4-rank comm_mode="overlap" run with
        every sanitizer armed reports zero findings and does not perturb
        the trajectory."""
        box, pos, vel, mass = ic_setup
        plain = DistributedSimulation(_config(box, comm_mode="overlap"), 4)
        p0, v0, i0 = plain.run(pos, vel, mass)
        checked = DistributedSimulation(
            _config(box, comm_mode="overlap", sanitize=True), 4
        )
        p1, v1, i1 = checked.run(pos, vel, mass)  # would raise on findings
        assert np.array_equal(p0, p1)
        assert np.array_equal(v0, v1)
        np.testing.assert_array_equal(i0, i1)
        assert checked.world.sanitizer is not None
        assert checked.world.sanitizer.findings == []

    def test_blocking_mode_also_clean(self, ic_setup):
        box, pos, vel, mass = ic_setup
        sim = DistributedSimulation(_config(box, sanitize=True), 2)
        sim.run(pos, vel, mass)
        assert sim.world.sanitizer.findings == []


class TestInjectedFaults:
    def test_nan_velocity_is_caught_with_phase_attribution(self, ic_setup):
        box, pos, vel, mass = ic_setup
        bad_vel = vel.copy()
        bad_vel[5, 2] = np.nan
        sim = DistributedSimulation(_config(box, sanitize=True), 2)
        with pytest.raises(CommError) as exc:
            sim.run(pos, bad_vel, mass)
        msg = str(exc.value)
        assert "NumericsError" in msg or "non-finite" in msg
        assert "half-kick" in msg or "migration" in msg

    def test_nan_caught_under_overlap_too(self, ic_setup):
        """The overlap engine's error path must cancel its posted
        requests: the numerics failure surfaces as the primary error, not
        as a sanitizer leak report or a hang."""
        box, pos, vel, mass = ic_setup
        bad_vel = vel.copy()
        bad_vel[0, 0] = np.inf
        sim = DistributedSimulation(
            _config(box, comm_mode="overlap", sanitize=True), 4
        )
        with pytest.raises(CommError) as exc:
            sim.run(pos, bad_vel, mass)
        assert "deadlock" not in str(exc.value)
