"""Deep analyzer: dataflow units, seed-clean gate, synthetic injections."""

import ast
import os
import shutil
import textwrap
import time

from repro.sanitize.deep import DEEP_RULE_NAMES, deep_analyze
from repro.sanitize.deep.cfg import build_cfg

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src", "repro")


def _analyze(tmp_path, source, name="mod.py", rules=None):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source).lstrip("\n"))
    return deep_analyze([str(path)], root=str(tmp_path), rules=rules)


def _by_rule(result, rule):
    return [f for f in result.findings if f.rule == rule]


class TestCFG:
    def _cfg(self, source):
        tree = ast.parse(textwrap.dedent(source))
        return build_cfg(tree.body[0])

    def test_exit_kinds(self):
        cfg = self._cfg("""
            def f(x):
                if x:
                    return 1
                if x > 2:
                    raise ValueError(x)
                x += 1
        """)
        kinds = sorted(kind for _node, kind in cfg.exits)
        assert kinds == ["end", "raise", "return"]

    def test_loop_exit_is_after_body_not_zero_trip(self):
        """At-least-once loops: the loop exit flows from the body (and
        breaks), never from the never-entered header."""
        cfg = self._cfg("""
            def f(items):
                for x in items:
                    y = x
        """)
        (node, kind), = cfg.exits
        assert kind == "end"
        assert isinstance(node.stmt, ast.Assign)  # the body, not the For

    def test_raise_inside_try_is_not_a_function_exit(self):
        cfg = self._cfg("""
            def f(x):
                try:
                    raise ValueError(x)
                except ValueError:
                    x = 0
                return x
        """)
        kinds = [kind for _node, kind in cfg.exits]
        assert kinds == ["return"]


class TestRequestLifecycle:
    def test_early_return_leak_flagged_at_post_site(self, tmp_path):
        res = _analyze(tmp_path, """
            def f(comm, flag):
                req = comm.iallreduce(1.0)
                if flag:
                    return None
                return req.wait()
        """)
        (f,) = _by_rule(res, "request-lifecycle")
        assert f.line == 2  # the post site, not the leaking return
        assert "iallreduce" in f.message and "return" in f.message

    def test_discarded_post_leaks(self, tmp_path):
        res = _analyze(tmp_path, """
            def f(comm):
                comm.irecv(source=1, tag=99)
                comm.barrier()
        """)
        (f,) = _by_rule(res, "request-lifecycle")
        assert f.line == 2 and "irecv" in f.message

    def test_wait_or_cancel_on_every_path_is_clean(self, tmp_path):
        res = _analyze(tmp_path, """
            def f(comm, flag):
                req = comm.ialltoallv([1.0])
                if flag:
                    req.cancel()
                    return None
                return req.wait()
        """)
        assert _by_rule(res, "request-lifecycle") == []

    def test_container_hold_with_comprehension_wait_is_clean(self, tmp_path):
        res = _analyze(tmp_path, """
            def exchange(comm, fields):
                reqs = {}
                try:
                    for k in fields:
                        reqs[k] = comm.ialltoallv(fields[k])
                except BaseException:
                    for r in reqs.values():
                        r.cancel()
                    raise
                return {k: r.wait() for k, r in reqs.items()}
        """)
        assert _by_rule(res, "request-lifecycle") == []

    def test_cleanup_helper_summary_settles_callers_requests(self, tmp_path):
        res = _analyze(tmp_path, """
            def _cancel_requests(reqs):
                for r in reqs:
                    if r is not None:
                        r.cancel()

            def pipelined(comm, chunks):
                prev = req = None
                try:
                    for c in chunks:
                        req = comm.ialltoallv(c)
                        if prev is not None:
                            prev.wait()
                        prev = req
                    got = prev.wait()
                except BaseException:
                    _cancel_requests((prev, req))
                    raise
                return got
        """)
        assert _by_rule(res, "request-lifecycle") == []

    def test_closure_dict_slot_with_wait_elsewhere_is_clean(self, tmp_path):
        res = _analyze(tmp_path, """
            def driver(comm, fields):
                state = {"req": None}

                def post():
                    state["req"] = comm.iallreduce(fields)

                def settle():
                    got = state["req"].wait()
                    state["req"] = None
                    return got

                post()
                return settle()
        """)
        assert _by_rule(res, "request-lifecycle") == []

    def test_slot_with_no_settlement_anywhere_is_flagged(self, tmp_path):
        res = _analyze(tmp_path, """
            def driver(comm, fields):
                state = {"req": None}

                def post():
                    state["req"] = comm.iallreduce(fields)

                post()
        """)
        (f,) = _by_rule(res, "request-lifecycle")
        assert f.line == 5 and "never settled" in f.message

    def test_cancel_only_slot_is_flagged_as_incomplete(self, tmp_path):
        res = _analyze(tmp_path, """
            def driver(comm, fields):
                state = {"req": None}

                def post():
                    state["req"] = comm.iallreduce(fields)

                def teardown():
                    state["req"].cancel()

                post()
                teardown()
        """)
        (f,) = _by_rule(res, "request-lifecycle")
        assert f.line == 5 and "only ever cancelled" in f.message

    def test_carrier_class_settled_through_helper_return(self, tmp_path):
        """The MigrationFlight shape: posts live on instance attrs, the
        instance travels through a helper return into a dict slot, and a
        completing method settles it — no findings on any layer."""
        res = _analyze(tmp_path, """
            class Flight:
                def __init__(self, comm, parts):
                    self._reqs = {"pos": comm.ialltoallv(parts)}

                def settle(self):
                    return {k: r.wait() for k, r in self._reqs.items()}

                def cancel(self):
                    for r in self._reqs.values():
                        r.cancel()

            def post_flight(comm, parts):
                return Flight(comm, parts)

            def driver(comm, parts):
                mig = {"flight": None}

                def post():
                    mig["flight"] = post_flight(comm, parts)

                def settle():
                    return mig["flight"].settle()

                def abort():
                    mig["flight"].cancel()

                post()
                try:
                    return settle()
                except BaseException:
                    abort()
                    raise
        """)
        assert _by_rule(res, "request-lifecycle") == []

    def test_pragma_suppresses_deep_finding(self, tmp_path):
        res = _analyze(tmp_path, """
            def f(comm):
                comm.irecv(source=1, tag=0)  # sanitize: allow-request-lifecycle
                comm.barrier()
        """)
        assert _by_rule(res, "request-lifecycle") == []
        assert res.n_suppressed == 1


class TestCollectiveDivergence:
    def test_rank_guarded_collective_is_flagged(self, tmp_path):
        res = _analyze(tmp_path, """
            def f(comm, x):
                if comm.rank == 0:
                    total = comm.allreduce(x)
                else:
                    total = x
                return total
        """)
        (f,) = _by_rule(res, "collective-divergence")
        assert f.line == 2 and "allreduce" in f.message

    def test_same_sequence_in_both_branches_is_clean(self, tmp_path):
        res = _analyze(tmp_path, """
            def f(comm, x):
                if comm.rank == 0:
                    y = comm.allreduce(x * 2)
                else:
                    y = comm.allreduce(x)
                return y
        """)
        assert _by_rule(res, "collective-divergence") == []

    def test_taint_propagates_through_simple_assignment(self, tmp_path):
        res = _analyze(tmp_path, """
            def f(comm, x):
                is_root = comm.rank == 0
                if is_root:
                    comm.barrier()
                return x
        """)
        (f,) = _by_rule(res, "collective-divergence")
        assert f.line == 3 and "barrier" in f.message

    def test_calls_block_taint(self, tmp_path):
        """Rank-derived *data* is not a rank-distinguishing predicate:
        every rank computes its own bounds, then all take the branch."""
        res = _analyze(tmp_path, """
            def f(comm, decomp, x):
                lo, hi = decomp.bounds(comm.rank)
                if hi > lo:
                    x = comm.allreduce(x)
                return x
        """)
        assert _by_rule(res, "collective-divergence") == []

    def test_early_return_before_later_collectives(self, tmp_path):
        res = _analyze(tmp_path, """
            def f(comm, x):
                if comm.rank == 0:
                    return x
                y = comm.allreduce(x)
                return y
        """)
        (f,) = _by_rule(res, "collective-divergence")
        assert f.line == 2 and "skip" in f.message

    def test_collective_in_rank_dependent_loop(self, tmp_path):
        res = _analyze(tmp_path, """
            def f(comm, x):
                n = comm.rank + 1
                while n > 0:
                    x = comm.allreduce(x)
                    n = n - 1
                return x
        """)
        (f,) = _by_rule(res, "collective-divergence")
        assert f.line == 3

    def test_transitive_collective_through_helper(self, tmp_path):
        res = _analyze(tmp_path, """
            def reduce_all(comm, x):
                return comm.allreduce(x)

            def f(comm, x):
                if comm.rank == 0:
                    x = reduce_all(comm, x)
                return x
        """)
        (f,) = _by_rule(res, "collective-divergence")
        assert "->reduce_all" in f.message

    def test_io_only_rank_zero_branch_is_clean(self, tmp_path):
        res = _analyze(tmp_path, """
            def f(comm, rows):
                if comm.rank == 0:
                    with open("out.txt", "w") as fh:
                        fh.write(str(rows))
                return comm.barrier()
        """)
        # collectives after the branch are fine: the branch does not exit
        assert _by_rule(res, "collective-divergence") == []


class TestSpanBalance:
    def test_begin_without_end_is_flagged(self, tmp_path):
        res = _analyze(tmp_path, """
            def f(tracer, gid):
                tracer.async_begin("ghost_exchange", gid)
        """)
        (f,) = _by_rule(res, "span-balance")
        assert "never ended" in f.message

    def test_end_without_begin_is_flagged(self, tmp_path):
        res = _analyze(tmp_path, """
            def f(tracer, gid):
                tracer.async_end("ghost_exchange", gid)
        """)
        (f,) = _by_rule(res, "span-balance")
        assert "never begun" in f.message

    def test_cross_function_pairing_is_clean(self, tmp_path):
        res = _analyze(tmp_path, """
            def post(tracer, gid):
                tracer.async_begin("ghost_exchange", gid)

            def settle(tracer, gid):
                tracer.async_end("ghost_exchange", gid)
        """)
        assert _by_rule(res, "span-balance") == []

    def test_unregistered_async_name_is_flagged(self, tmp_path):
        res = _analyze(tmp_path, """
            def post(tracer, gid):
                tracer.async_begin("totally/made-up", gid)

            def settle(tracer, gid):
                tracer.async_end("totally/made-up", gid)
        """)
        (f,) = _by_rule(res, "span-balance")
        assert "ASYNC_SPANS" in f.message


class TestSeedTree:
    def test_seed_tree_is_deep_clean_and_fast(self):
        t0 = time.monotonic()
        res = deep_analyze([SRC], root=REPO)
        elapsed = time.monotonic() - t0
        rendered = "\n".join(f.render() for f in res.findings)
        assert res.findings == [], "\n" + rendered
        assert res.errors == []
        assert res.n_files >= 90
        # zero pragmas needed: the analysis is tuned to the tree's real
        # idioms, not suppressed into silence
        assert res.n_suppressed == 0
        assert elapsed < 10.0, f"deep analysis took {elapsed:.1f}s"

    def test_rule_names_are_stable(self):
        assert DEEP_RULE_NAMES == (
            "request-lifecycle", "collective-divergence", "span-balance",
        )


class TestSyntheticInjection:
    def _copy_tree(self, tmp_path):
        dst = tmp_path / "repro"
        shutil.copytree(SRC, dst)
        return dst

    def test_dropped_wait_in_overload_yields_one_finding(self, tmp_path):
        tree = self._copy_tree(tmp_path)
        target = tree / "parallel" / "overload.py"
        src = target.read_text()
        broken = src.replace(
            "out = {k: np.concatenate(r.wait()) "
            "for k, r in self._reqs1.items()}",
            "out = {k: r for k, r in self._reqs1.items()}",
        )
        assert broken != src, "settle_arrivals wait() site moved"
        target.write_text(broken)

        res = deep_analyze([str(tree)], root=str(tmp_path))
        (f,) = res.findings
        assert f.rule == "request-lifecycle"
        assert f.path == "repro/parallel/overload.py"
        # attribution: the finding lands on the first _reqs1 post site
        post_line = 1 + next(
            i for i, line in enumerate(src.splitlines())
            if "self._reqs1 = {" in line
        )
        assert f.line == post_line
        assert "_reqs1" in f.message

    def test_rank_guarded_collective_yields_one_finding(self, tmp_path):
        tree = self._copy_tree(tmp_path)
        fixture = tree / "parallel" / "divergent_fixture.py"
        fixture.write_text(textwrap.dedent("""
            \"\"\"Synthetic: rank-guarded collective (deadlock shape).\"\"\"


            def reduce_stats(comm, local):
                if comm.rank == 0:
                    return comm.allreduce(local)
                return local
        """).lstrip())

        res = deep_analyze([str(tree)], root=str(tmp_path))
        (f,) = res.findings
        assert f.rule == "collective-divergence"
        assert f.path == "repro/parallel/divergent_fixture.py"
        assert f.line == 5
