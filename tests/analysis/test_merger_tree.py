"""Merger-tree linking tests."""

import numpy as np
import pytest

from repro.analysis import (
    FOFCatalog,
    fof_halos,
    link_catalogs,
    mass_growth_histories,
)


def catalog_from(labels, masses=None):
    labels = np.asarray(labels, dtype=np.int64)
    n_halos = labels.max() + 1 if (labels >= 0).any() else 0
    sizes = np.array([(labels == h).sum() for h in range(n_halos)],
                     dtype=np.int64)
    if masses is None:
        masses = sizes.astype(float)
    return FOFCatalog(
        labels=labels,
        n_halos=int(n_halos),
        halo_mass=np.asarray(masses, dtype=np.float64),
        halo_size=sizes,
        halo_center=np.zeros((n_halos, 3)),
        halo_vel=np.zeros((n_halos, 3)),
    )


class TestLinking:
    def test_identity_linking(self):
        """A catalog linked to itself: every halo is its own main
        descendant with fraction 1."""
        labels = np.array([0] * 5 + [1] * 8 + [-1] * 3)
        cat = catalog_from(labels)
        ids = np.arange(len(labels))
        level = link_catalogs(cat, cat, ids, ids)
        assert len(level.links) == 2
        for l in level.links:
            assert l.progenitor == l.descendant
            assert l.shared_fraction == 1.0
            assert l.is_main

    def test_merger_detected(self):
        """Two early halos whose particles end up in one later halo."""
        early = catalog_from([0] * 6 + [1] * 4)
        later = catalog_from([0] * 10)
        ids = np.arange(10)
        level = link_catalogs(early, later, ids, ids)
        assert level.n_mergers == 1
        progs = level.progenitors_of(0)
        assert {l.progenitor for l in progs} == {0, 1}
        # the bigger progenitor is the main branch
        assert level.main_progenitor(0) == 0

    def test_fragmentation(self):
        """One early halo splitting into two descendants links to both."""
        early = catalog_from([0] * 10)
        later = catalog_from([0] * 6 + [1] * 4)
        ids = np.arange(10)
        level = link_catalogs(early, later, ids, ids)
        descs = level.descendants_of(0)
        assert {l.descendant for l in descs} == {0, 1}

    def test_reordered_ids(self):
        """Row order differs between snapshots; IDs do the matching."""
        early = catalog_from([0, 0, 0, 1, 1, -1])
        ids_early = np.array([10, 11, 12, 20, 21, 30])
        perm = np.array([3, 0, 5, 1, 4, 2])
        later = catalog_from(np.array([0, 0, 0, 1, 1, -1])[perm])
        ids_later = ids_early[perm]
        level = link_catalogs(early, later, ids_early, ids_later,
                              min_shared=2)
        mains = {l.progenitor: l.descendant for l in level.links if l.is_main}
        # halo 0's particles (ids 10-12) land where label says
        assert 0 in mains and 1 in mains

    def test_min_shared_filters_noise(self):
        early = catalog_from([0] * 5 + [1] * 5)
        # one particle of halo 1 strays into descendant 0
        later = catalog_from([0] * 6 + [1] * 4)
        ids = np.arange(10)
        level = link_catalogs(early, later, ids, ids, min_shared=3)
        assert all(
            not (l.progenitor == 1 and l.descendant == 0)
            for l in level.links
        )


class TestGrowthHistories:
    def test_monotone_growth_chain(self):
        cats = [
            catalog_from([0] * 4 + [-1] * 6, masses=[4.0]),
            catalog_from([0] * 7 + [-1] * 3, masses=[7.0]),
            catalog_from([0] * 10, masses=[10.0]),
        ]
        ids = np.arange(10)
        levels = [
            link_catalogs(cats[0], cats[1], ids, ids),
            link_catalogs(cats[1], cats[2], ids, ids),
        ]
        hist = mass_growth_histories(levels, cats[-1], cats)
        assert hist[0] == [4.0, 7.0, 10.0]

    def test_history_from_real_clustering(self):
        """End-to-end: FOF two particle snapshots, link, get a history."""
        rng = np.random.default_rng(4)
        box = 10.0
        blob_early = rng.normal(5.0, 0.3, (30, 3))
        field = rng.uniform(0, box, (20, 3))
        pos_early = np.mod(np.vstack([blob_early, field]), box)
        # later: the blob contracts and accretes 5 field particles
        pos_later = pos_early.copy()
        pos_later[:30] = 5.0 + (pos_early[:30] - 5.0) * 0.5
        pos_later[30:35] = rng.normal(5.0, 0.2, (5, 3))
        ids = np.arange(50)
        mass = np.ones(50)
        cat_e = fof_halos(pos_early, mass, box, linking_length=0.5,
                          min_members=5)
        cat_l = fof_halos(pos_later, mass, box, linking_length=0.5,
                          min_members=5)
        assert cat_e.n_halos >= 1 and cat_l.n_halos >= 1
        level = link_catalogs(cat_e, cat_l, ids, ids)
        hist = mass_growth_histories([level], cat_l, [cat_e, cat_l])
        # the surviving halo grew by accretion
        main = int(np.argmax(cat_l.halo_mass))
        assert hist[main][-1] >= hist[main][0]
