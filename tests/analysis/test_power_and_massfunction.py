"""Power spectrum measurement and mass function tests."""

import numpy as np
import pytest

from repro.analysis import (
    cluster_count,
    dimensionless_power,
    halo_mass_function,
    measure_power_spectrum,
    press_schechter_mass_function,
)
from repro.cosmology import PLANCK18, LinearPower, gaussian_field


class TestPowerMeasurement:
    def test_random_particles_shot_noise(self):
        """Poisson particles: P(k) ~ V/N (shot noise) at all k."""
        rng = np.random.default_rng(0)
        n, box = 5000, 100.0
        pos = rng.uniform(0, box, (n, 3))
        k, pk = measure_power_spectrum(pos, np.ones(n), box, n_grid=32)
        sel = np.isfinite(pk) & (k < 0.8)  # avoid Nyquist cells
        expected = box**3 / n
        assert np.nanmean(pk[sel]) == pytest.approx(expected, rel=0.25)

    def test_shot_noise_subtraction(self):
        rng = np.random.default_rng(1)
        n, box = 5000, 100.0
        pos = rng.uniform(0, box, (n, 3))
        k, pk = measure_power_spectrum(
            pos, np.ones(n), box, n_grid=32, subtract_shot_noise=True
        )
        sel = np.isfinite(pk) & (k < 0.8)
        assert abs(np.nanmean(pk[sel])) < 0.3 * box**3 / n

    def test_single_mode_recovered(self):
        """Particles weighted by a cosine mode show power at that k only."""
        box, ng = 100.0, 32
        # use a displaced lattice carrying one mode
        npd = 32
        coords = (np.arange(npd) + 0.5) * (box / npd)
        gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
        pos = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)
        kmode = 2 * np.pi / box * 4
        amp = 0.5
        pos[:, 0] += amp * np.sin(kmode * pos[:, 0])  # Zel'dovich-like mode
        pos = np.mod(pos, box)
        k, pk = measure_power_spectrum(pos, np.ones(len(pos)), box, n_grid=ng)
        peak_k = k[np.nanargmax(pk)]
        assert peak_k == pytest.approx(kmode, rel=0.2)

    def test_gaussian_field_realization_consistency(self):
        """Sampling particles from a Gaussian field recovers its P(k) shape."""
        power = LinearPower(PLANCK18)
        box, ng = 500.0, 32
        delta = gaussian_field(ng, box, power, a=1.0, seed=7)
        # Poisson-sample tracers with rate proportional to (1 + delta)
        rng = np.random.default_rng(8)
        lam = np.clip(1.0 + delta, 0.0, None)
        counts = rng.poisson(lam * 3.0)
        idx = np.nonzero(counts.ravel())[0]
        reps = counts.ravel()[idx]
        cell = box / ng
        base = np.stack(np.unravel_index(idx, (ng, ng, ng)), axis=-1) * cell
        pos = np.repeat(base, reps, axis=0) + rng.uniform(0, cell, (reps.sum(), 3))
        k, pk = measure_power_spectrum(
            pos, np.ones(len(pos)), box, n_grid=ng, subtract_shot_noise=True
        )
        sel = (k > 0.03) & (k < 0.1) & np.isfinite(pk)
        expected = power(k[sel])
        ratio = np.nanmean(pk[sel] / expected)
        assert ratio == pytest.approx(1.0, abs=0.45)

    def test_dimensionless_power(self):
        k = np.array([1.0, 2.0])
        pk = np.array([10.0, 10.0])
        d2 = dimensionless_power(k, pk)
        assert d2[1] / d2[0] == pytest.approx(8.0)

    def test_empty_grid_raises(self):
        with pytest.raises(ValueError):
            measure_power_spectrum(np.empty((0, 3)), np.empty(0), 10.0, n_grid=8)


class TestMassFunction:
    def test_binning_counts(self):
        masses = np.array([1e12, 2e12, 5e13, 1e14, 2e14])
        m, dn, counts = halo_mass_function(masses, box=100.0, n_bins=5)
        assert counts.sum() == 5
        assert np.all(dn >= 0)

    def test_volume_normalization(self):
        masses = np.full(100, 1e13)
        _, dn1, _ = halo_mass_function(masses, box=100.0, n_bins=1,
                                       m_min=1e12, m_max=1e14)
        _, dn2, _ = halo_mass_function(masses, box=200.0, n_bins=1,
                                       m_min=1e12, m_max=1e14)
        assert dn1[0] / dn2[0] == pytest.approx(8.0)

    def test_empty_catalog(self):
        m, dn, counts = halo_mass_function(np.array([]), box=10.0)
        assert len(m) == 0

    def test_press_schechter_shape(self):
        """PS mass function decreases with mass and falls exponentially at
        the cluster scale."""
        masses = np.logspace(12, 15, 8)
        dn = press_schechter_mass_function(masses, PLANCK18, a=1.0)
        assert np.all(np.diff(np.log(dn)) < 0)
        # exponential cutoff: slope steepens
        slopes = np.diff(np.log(dn)) / np.diff(np.log(masses))
        assert slopes[-1] < slopes[0]

    def test_press_schechter_growth(self):
        """Cluster-scale abundance grows strongly with time."""
        m = np.array([1e14])
        early = press_schechter_mass_function(m, PLANCK18, a=0.5)
        late = press_schechter_mass_function(m, PLANCK18, a=1.0)
        assert late[0] > 2.0 * early[0]

    def test_cluster_count(self):
        masses = np.array([1e13, 5e13, 1e14, 3e14])
        assert cluster_count(masses) == 2
        assert cluster_count(masses, m_cluster=1e13) == 4
