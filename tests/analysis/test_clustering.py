"""FOF, DBSCAN, union-find, and BVH tests against brute-force references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    UnionFind,
    brute_force_dbscan_labels,
    brute_force_fof_labels,
    build_lbvh,
    dbscan,
    fof_halos,
    morton_codes,
)


def labels_equivalent(a, b):
    """Two labelings agree up to renaming."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    mapping = {}
    reverse = {}
    for x, y in zip(a.tolist(), b.tolist()):
        if x in mapping and mapping[x] != y:
            return False
        if y in reverse and reverse[y] != x:
            return False
        mapping[x] = y
        reverse[y] = x
    return True


def two_blob_cloud(seed=0, n_each=40, box=10.0):
    rng = np.random.default_rng(seed)
    blob1 = rng.normal([2.5, 2.5, 2.5], 0.2, (n_each, 3))
    blob2 = rng.normal([7.5, 7.5, 7.5], 0.2, (n_each, 3))
    field = rng.uniform(0, box, (10, 3))
    return np.mod(np.vstack([blob1, blob2, field]), box)


class TestUnionFind:
    def test_initial_components(self):
        uf = UnionFind(5)
        assert uf.n_components() == 5

    def test_union_reduces_components(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.n_components() == 2
        uf.union(1, 2)
        assert uf.n_components() == 1

    def test_labels_consistent(self):
        uf = UnionFind(6)
        uf.union_edges([0, 3], [1, 4])
        lab = uf.labels()
        assert lab[0] == lab[1]
        assert lab[3] == lab[4]
        assert lab[0] != lab[3]
        assert lab[2] != lab[0] and lab[5] != lab[0]

    def test_idempotent_union(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(0, 1)
        uf.union(1, 0)
        assert uf.n_components() == 2

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @given(
        n=st.integers(1, 30),
        edges=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matches_networkx(self, n, edges):
        import networkx as nx

        edges = [(a % n, b % n) for a, b in edges]
        uf = UnionFind(n)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for a, b in edges:
            uf.union(a, b)
            g.add_edge(a, b)
        assert uf.n_components() == nx.number_connected_components(g)


class TestFOF:
    def test_matches_brute_force(self):
        pos = two_blob_cloud()
        ll = 0.5
        cat = fof_halos(pos, np.ones(len(pos)), 10.0, linking_length=ll,
                        min_members=1)
        ref = brute_force_fof_labels(pos, 10.0, ll)
        assert labels_equivalent(cat.labels, ref)

    def test_two_blobs_found(self):
        pos = two_blob_cloud()
        cat = fof_halos(pos, np.ones(len(pos)), 10.0, linking_length=0.5,
                        min_members=10)
        assert cat.n_halos == 2
        assert set(cat.halo_size.tolist()) == {40, 40}

    def test_min_members_filters(self):
        pos = two_blob_cloud()
        cat = fof_halos(pos, np.ones(len(pos)), 10.0, linking_length=0.5,
                        min_members=100)
        assert cat.n_halos == 0
        assert np.all(cat.labels == -1)

    def test_halo_mass_sums_members(self):
        pos = two_blob_cloud()
        mass = np.full(len(pos), 2.5)
        cat = fof_halos(pos, mass, 10.0, linking_length=0.5, min_members=10)
        np.testing.assert_allclose(cat.halo_mass, 2.5 * cat.halo_size)

    def test_center_of_mass_near_blob_centers(self):
        pos = two_blob_cloud()
        cat = fof_halos(pos, np.ones(len(pos)), 10.0, linking_length=0.5,
                        min_members=10)
        centers = np.sort(cat.halo_center[:, 0])
        assert centers[0] == pytest.approx(2.5, abs=0.2)
        assert centers[1] == pytest.approx(7.5, abs=0.2)

    def test_periodic_halo_across_boundary(self):
        """A blob straddling the box wrap is one halo with a correct center."""
        rng = np.random.default_rng(1)
        blob = rng.normal(0.0, 0.15, (50, 3))  # centered at origin/corner
        pos = np.mod(blob, 10.0)
        cat = fof_halos(pos, np.ones(50), 10.0, linking_length=0.6,
                        min_members=10)
        assert cat.n_halos == 1
        c = cat.halo_center[0]
        # center should be near 0 (mod box)
        d = np.abs(((c + 5.0) % 10.0) - 5.0)
        assert np.all(d < 0.2)

    def test_empty_input(self):
        cat = fof_halos(np.empty((0, 3)), np.empty(0), 10.0)
        assert cat.n_halos == 0

    @given(seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_property_matches_brute_force_random(self, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 5, (60, 3))
        ll = 0.7
        cat = fof_halos(pos, np.ones(60), 5.0, linking_length=ll, min_members=1)
        ref = brute_force_fof_labels(pos, 5.0, ll)
        assert labels_equivalent(cat.labels, ref)


class TestDBSCAN:
    def test_two_blobs(self):
        pos = two_blob_cloud()
        res = dbscan(pos, eps=0.4, min_pts=5, box=10.0)
        assert res.n_clusters == 2

    def test_core_points_match_brute_force(self):
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 3, (80, 3))
        res = dbscan(pos, eps=0.5, min_pts=4, box=3.0)
        ref_labels, ref_core = brute_force_dbscan_labels(pos, 0.5, 4, box=3.0)
        np.testing.assert_array_equal(res.core_mask, ref_core)
        # core-point partitions agree up to renaming
        core = res.core_mask
        assert labels_equivalent(res.labels[core], ref_labels[core])

    def test_noise_identified(self):
        pos = two_blob_cloud()
        res = dbscan(pos, eps=0.4, min_pts=5, box=10.0)
        # the 10 scattered field points should mostly be noise
        assert np.sum(res.labels == -1) >= 5

    def test_border_points_attach_to_core_cluster(self):
        rng = np.random.default_rng(4)
        core_blob = rng.normal(5.0, 0.1, (30, 3))
        border = np.array([[5.35, 5.0, 5.0]])
        pos = np.vstack([core_blob, border])
        res = dbscan(pos, eps=0.4, min_pts=5, box=10.0)
        assert res.labels[-1] == res.labels[0]

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            dbscan(np.zeros((3, 3)), eps=0.0)

    def test_empty(self):
        res = dbscan(np.empty((0, 3)), eps=1.0)
        assert res.n_clusters == 0


class TestBVH:
    def test_morton_locality(self):
        """Nearby points get nearby codes (weak sanity check)."""
        pts = np.array([[0.0, 0.0, 0.0], [0.01, 0.01, 0.01], [1.0, 1.0, 1.0]])
        codes = morton_codes(pts, np.zeros(3), np.ones(3))
        assert abs(int(codes[0]) - int(codes[1])) < abs(
            int(codes[0]) - int(codes[2])
        )

    def test_radius_query_matches_brute_force(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 1, (300, 3))
        bvh = build_lbvh(pts, max_leaf=8)
        centers = rng.uniform(0, 1, (10, 3))
        r = 0.2
        results = bvh.query_radius(centers, r)
        for c, found in zip(centers, results):
            d = pts - c
            ref = np.nonzero(np.einsum("na,na->n", d, d) <= r * r)[0]
            assert set(found.tolist()) == set(ref.tolist())

    def test_query_empty_region(self):
        pts = np.random.default_rng(6).uniform(0, 0.1, (50, 3))
        bvh = build_lbvh(pts)
        res = bvh.query_radius(np.array([[0.9, 0.9, 0.9]]), 0.05)
        assert len(res[0]) == 0

    def test_all_points_in_some_leaf(self):
        pts = np.random.default_rng(7).uniform(0, 1, (100, 3))
        bvh = build_lbvh(pts, max_leaf=4)
        leaf_nodes = np.nonzero(bvh.leaf_start >= 0)[0]
        total = bvh.leaf_count[leaf_nodes].sum()
        assert total == 100

    def test_build_empty_raises(self):
        with pytest.raises(ValueError):
            build_lbvh(np.empty((0, 3)))
