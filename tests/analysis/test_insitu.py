"""In situ pipeline tests: per-step analysis products."""

import numpy as np
import pytest

from repro.analysis import InSituPipeline, density_temperature_slices
from repro.core.particles import Particles, Species, make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig
from repro.cosmology import PLANCK18, zeldovich_ics


@pytest.fixture(scope="module")
def small_sim():
    box = 20.0
    ics = zeldovich_ics(6, box, PLANCK18, a_init=0.3, seed=3)
    parts = make_gas_dm_pair(
        ics.positions, ics.velocities, ics.particle_mass,
        PLANCK18.omega_b, PLANCK18.omega_m, u_init=20.0, box=box,
    )
    cfg = SimulationConfig(
        box=box, pm_grid=12, a_init=0.3, a_final=0.4, n_pm_steps=2,
        cosmo=PLANCK18, max_rung=1,
    )
    sim = Simulation(cfg, parts)
    return sim


class TestPipeline:
    def test_hook_produces_report_each_step(self, small_sim):
        pipe = InSituPipeline(n_grid=12, min_members=6)
        small_sim.insitu_hooks.append(pipe)
        small_sim.run(2)
        assert len(pipe.reports) == 2
        for rep, expected_step in zip(pipe.reports, (0, 1)):
            assert rep.step == expected_step
            assert rep.clustering_rms > 0
            assert np.isfinite(rep.pk[np.isfinite(rep.pk)]).all()
            assert rep.density_slice.shape == (12, 12)
            assert rep.temperature_slice is not None

    def test_every_k_skips_steps(self, small_sim):
        pipe = InSituPipeline(every=2)
        rec_like = type("R", (), {"step": 1, "a": 0.4})()
        assert pipe(small_sim, rec_like) is None
        assert pipe.reports == []

    def test_galaxy_count_zero_without_stars(self, small_sim):
        pipe = InSituPipeline(n_grid=12)
        rep = pipe.analyze(small_sim, step=0, a=small_sim.a)
        assert rep.n_galaxies == 0

    def test_galaxies_found_with_stars(self, small_sim):
        # hand-plant a tight stellar clump
        p = small_sim.particles
        gas_idx = np.nonzero(p.gas)[0][:8]
        p.species[gas_idx] = int(Species.STAR)
        p.pos[gas_idx] = 10.0 + np.random.default_rng(0).normal(
            0, 0.05, (8, 3)
        )
        pipe = InSituPipeline(n_grid=12)
        rep = pipe.analyze(small_sim, step=0, a=small_sim.a)
        assert rep.n_galaxies >= 1
        # restore
        p.species[gas_idx] = int(Species.GAS)

    def test_timing_lands_in_analysis_bucket(self, small_sim):
        pipe = InSituPipeline(n_grid=12)
        small_sim.insitu_hooks.append(pipe)
        rec = small_sim.pm_step()
        assert rec.timers["analysis"] > 0


class TestSlices:
    def test_slice_mass_accounting(self):
        rng = np.random.default_rng(1)
        n = 400
        box = 10.0
        parts = Particles(
            pos=rng.uniform(0, box, (n, 3)),
            vel=np.zeros((n, 3)),
            mass=np.full(n, 2.0),
            species=np.full(n, int(Species.GAS), dtype=np.int8),
            u=np.full(n, 50.0),
        )
        width = box / 4
        dens, temp = density_temperature_slices(
            parts, box, n_grid=8, width=width
        )
        in_slab = parts.pos[:, 2] < width
        cell = box / 8
        total = dens.sum() * cell**2 * width
        assert total == pytest.approx(2.0 * in_slab.sum(), rel=1e-10)

    def test_no_gas_gives_none_temperature(self):
        parts = Particles(
            pos=np.random.default_rng(2).uniform(0, 5, (50, 3)),
            vel=np.zeros((50, 3)),
            mass=np.ones(50),
            species=np.zeros(50, dtype=np.int8),  # all DM
        )
        dens, temp = density_temperature_slices(parts, 5.0, n_grid=4)
        assert temp is None
        assert dens.sum() > 0

    def test_temperature_values(self):
        parts = Particles(
            pos=np.full((10, 3), 0.5),
            vel=np.zeros((10, 3)),
            mass=np.ones(10),
            species=np.full(10, int(Species.GAS), dtype=np.int8),
            u=np.full(10, 100.0),
        )
        from repro.core.sph.eos import IdealGasEOS

        dens, temp = density_temperature_slices(parts, 8.0, n_grid=4)
        expected = IdealGasEOS().temperature(100.0)
        assert temp.max() == pytest.approx(expected, rel=1e-10)
