"""Sky map, lightcone, and halo-profile tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    AngularMap,
    LightconeBuilder,
    angles_from_vectors,
    compton_y_weights,
    fit_nfw,
    nfw_density,
    radial_profile,
    virial_radius,
    xray_luminosity_weights,
)
from repro.cosmology import PLANCK18


class TestAngularMap:
    def test_total_weight_conserved(self):
        rng = np.random.default_rng(0)
        sky = AngularMap(n_theta=32, n_phi=64)
        n = 500
        theta = np.arccos(rng.uniform(-1, 1, n))
        phi = rng.uniform(0, 2 * math.pi, n)
        w = rng.uniform(0.5, 2.0, n)
        sky.add(theta, phi, w)
        assert sky.integral() == pytest.approx(w.sum(), rel=1e-10)

    def test_solid_angles_sum_to_4pi(self):
        sky = AngularMap(n_theta=16, n_phi=32)
        assert sky.pixel_solid_angle.sum() == pytest.approx(4 * math.pi)

    def test_isotropic_points_give_uniform_map(self):
        rng = np.random.default_rng(1)
        sky = AngularMap(n_theta=8, n_phi=16)
        n = 200_000
        theta = np.arccos(rng.uniform(-1, 1, n))
        phi = rng.uniform(0, 2 * math.pi, n)
        sky.add(theta, phi, np.ones(n))
        expected = n / (4 * math.pi)
        assert np.abs(sky.data / expected - 1).max() < 0.1

    def test_point_source_lands_in_one_pixel(self):
        sky = AngularMap(n_theta=16, n_phi=32)
        sky.add(np.array([1.0]), np.array([2.0]), np.array([5.0]))
        assert np.count_nonzero(sky.data) == 1
        assert sky.integral() == pytest.approx(5.0)

    @given(
        theta=st.floats(0.0, math.pi),
        phi=st.floats(0.0, 2 * math.pi - 1e-9),
        w=st.floats(0.1, 100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_single_weight_conserved(self, theta, phi, w):
        sky = AngularMap(n_theta=12, n_phi=24)
        sky.add(np.array([theta]), np.array([phi]), np.array([w]))
        assert sky.integral() == pytest.approx(w, rel=1e-9)


class TestAngles:
    def test_axis_directions(self):
        theta, phi, r = angles_from_vectors(
            np.array([[0.0, 0.0, 2.0], [1.0, 0.0, 0.0], [0.0, -1.0, 0.0]])
        )
        assert theta[0] == pytest.approx(0.0)
        assert r[0] == pytest.approx(2.0)
        assert theta[1] == pytest.approx(math.pi / 2)
        assert phi[1] == pytest.approx(0.0)
        assert phi[2] == pytest.approx(3 * math.pi / 2)


class TestObservableWeights:
    def test_compton_y_scales_with_temperature(self):
        m = np.array([1e10, 1e10])
        u = np.array([100.0, 200.0])
        d = np.array([100.0, 100.0])
        y = compton_y_weights(m, u, d)
        assert y[1] / y[0] == pytest.approx(2.0, rel=1e-10)

    def test_compton_y_inverse_square(self):
        m = np.array([1e10, 1e10])
        u = np.array([100.0, 100.0])
        y = compton_y_weights(m, u, np.array([100.0, 200.0]))
        assert y[0] / y[1] == pytest.approx(4.0, rel=1e-10)

    def test_xray_density_squared(self):
        m = np.array([1e10, 1e10])
        u = np.array([100.0, 100.0])
        lx1 = xray_luminosity_weights(m, np.array([1e12]), u[:1])
        lx2 = xray_luminosity_weights(m, np.array([2e12]), u[:1])
        # L ~ n^2 V with V = m/rho -> L ~ n: doubling rho at fixed mass
        # doubles luminosity
        assert lx2[0] / lx1[0] == pytest.approx(2.0, rel=1e-10)

    def test_xray_sqrt_t(self):
        m = np.array([1e10])
        lx1 = xray_luminosity_weights(m, np.array([1e12]), np.array([100.0]))
        lx4 = xray_luminosity_weights(m, np.array([1e12]), np.array([400.0]))
        assert lx4[0] / lx1[0] == pytest.approx(2.0, rel=1e-10)


class TestLightcone:
    def setup_method(self):
        self.box = 500.0
        self.builder = LightconeBuilder(self.box, PLANCK18)

    def test_shell_radii_ordered(self):
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, self.box, (2000, 3))
        shell = self.builder.shell(pos, a_inner=0.9, a_outer=0.8)
        _, _, r = angles_from_vectors(shell.positions)
        assert np.all(r >= shell.chi_min - 1e-9)
        assert np.all(r < shell.chi_max + 1e-9)
        assert shell.chi_max > shell.chi_min > 0

    def test_shells_partition_volume(self):
        """Adjacent shells share no replicated particle positions."""
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, self.box, (1000, 3))
        s1 = self.builder.shell(pos, a_inner=0.95, a_outer=0.9)
        s2 = self.builder.shell(pos, a_inner=0.9, a_outer=0.85)
        _, _, r1 = angles_from_vectors(s1.positions)
        _, _, r2 = angles_from_vectors(s2.positions)
        assert r1.max() <= r2.min() + 1e-6

    def test_shell_density_matches_mean(self):
        """A uniform snapshot fills the shell at the mean number density."""
        rng = np.random.default_rng(4)
        n = 20000
        pos = rng.uniform(0, self.box, (n, 3))
        shell = self.builder.shell(pos, a_inner=0.92, a_outer=0.88)
        vol_shell = 4.0 / 3.0 * math.pi * (shell.chi_max**3 - shell.chi_min**3)
        expected = n / self.box**3 * vol_shell
        assert len(shell.positions) == pytest.approx(expected, rel=0.05)

    def test_projection_conserves_weight(self):
        rng = np.random.default_rng(5)
        pos = rng.uniform(0, self.box, (3000, 3))
        weights = rng.uniform(1, 2, 3000)
        shell = self.builder.shell(pos, a_inner=0.95, a_outer=0.9)
        sky = AngularMap(n_theta=16, n_phi=32)
        self.builder.project_shell(shell, weights, sky)
        assert sky.integral() == pytest.approx(
            weights[shell.indices].sum(), rel=1e-9
        )

    def test_invalid_shell_raises(self):
        with pytest.raises(ValueError):
            self.builder.shell(np.zeros((1, 3)), a_inner=0.5, a_outer=0.9)


class TestProfiles:
    def make_nfw_halo(self, n=30000, rho_s=1e14, r_s=0.3, r_max=3.0, seed=6):
        """Sample particles from an NFW profile by inverse transform on
        the enclosed-mass function."""
        rng = np.random.default_rng(seed)
        # M(<r) ~ ln(1+x) - x/(1+x); sample radii by rejection on a grid
        r_grid = np.linspace(1e-3, r_max, 4000)
        pdf = nfw_density(r_grid, rho_s, r_s) * r_grid**2
        cdf = np.cumsum(pdf)
        cdf /= cdf[-1]
        radii = np.interp(rng.uniform(0, 1, n), cdf, r_grid)
        dirs = rng.normal(size=(n, 3))
        dirs /= np.linalg.norm(dirs, axis=1)[:, None]
        # total mass from the profile integral
        m_total = np.trapezoid(4 * np.pi * pdf, r_grid)
        pos = 10.0 + radii[:, None] * dirs  # center at (10,10,10)
        return np.mod(pos, 20.0), np.full(n, m_total / n), (rho_s, r_s)

    def test_profile_recovers_density_normalization(self):
        pos, mass, (rho_s, r_s) = self.make_nfw_halo()
        prof = radial_profile(
            np.array([10.0, 10.0, 10.0]), pos, mass, box=20.0, r_max=3.0,
            n_bins=14, r_min=0.05,
        )
        model = nfw_density(prof.r_centers, rho_s, r_s)
        good = prof.counts > 50
        ratio = prof.density[good] / model[good]
        assert np.abs(np.log10(ratio)).max() < 0.15

    def test_nfw_fit_recovers_parameters(self):
        pos, mass, (rho_s, r_s) = self.make_nfw_halo()
        prof = radial_profile(
            np.array([10.0, 10.0, 10.0]), pos, mass, box=20.0, r_max=3.0,
            n_bins=14, r_min=0.05,
        )
        fit = fit_nfw(prof, min_counts=50)
        assert fit.r_s == pytest.approx(r_s, rel=0.25)
        assert fit.rho_s == pytest.approx(rho_s, rel=0.5)
        assert fit.log_residual_rms < 0.1

    def test_enclosed_mass_monotone(self):
        pos, mass, _ = self.make_nfw_halo(n=5000)
        prof = radial_profile(
            np.array([10.0, 10.0, 10.0]), pos, mass, box=20.0, r_max=3.0
        )
        assert np.all(np.diff(prof.enclosed_mass) >= 0)
        assert prof.enclosed_mass[-1] == pytest.approx(mass.sum(), rel=0.05)

    def test_temperature_profile(self):
        rng = np.random.default_rng(7)
        n = 2000
        pos = np.mod(10.0 + rng.normal(0, 0.5, (n, 3)), 20.0)
        mass = np.ones(n)
        u = np.full(n, 100.0)
        prof = radial_profile(
            np.array([10.0, 10.0, 10.0]), pos, mass, box=20.0, r_max=2.0, u=u
        )
        from repro.core.sph.eos import IdealGasEOS

        t_expected = IdealGasEOS().temperature(100.0)
        sampled = prof.temperature[prof.counts > 10]
        np.testing.assert_allclose(sampled, t_expected, rtol=1e-10)

    def test_virial_radius_of_tophat(self):
        """Uniform 400x-overdense ball embedded in a mean-density field:
        R_200 falls where the mean enclosed density crosses 200x."""
        rng = np.random.default_rng(8)
        n = 20000
        r_ball = 1.0
        box = 20.0
        radii = r_ball * rng.uniform(0, 1, n) ** (1 / 3)
        dirs = rng.normal(size=(n, 3))
        dirs /= np.linalg.norm(dirs, axis=1)[:, None]
        ball_pos = np.mod(10.0 + radii[:, None] * dirs, box)
        m_ball = 400.0 * (4 / 3 * np.pi * r_ball**3)  # rho_mean = 1
        # background field at the mean density (rho_mean = 1)
        n_bg = 40000
        bg_pos = rng.uniform(0, box, (n_bg, 3))
        pos = np.vstack([ball_pos, bg_pos])
        mass = np.concatenate(
            [np.full(n, m_ball / n), np.full(n_bg, box**3 / n_bg)]
        )
        r200 = virial_radius(
            np.array([10.0, 10.0, 10.0]), pos, mass, box=box, rho_mean=1.0,
            overdensity=200.0,
        )
        # mean enclosed: [400 r_b^3 + (r^3 - r_b^3)] / r^3 = 200
        #   -> r = (399/199)^(1/3) r_ball
        expected = (399.0 / 199.0) ** (1 / 3) * r_ball
        assert r200 == pytest.approx(expected, rel=0.05)

    def test_fit_needs_enough_bins(self):
        prof = radial_profile(
            np.array([10.0, 10.0, 10.0]),
            np.random.default_rng(9).uniform(9, 11, (20, 3)),
            np.ones(20), box=20.0, r_max=1.0,
        )
        with pytest.raises(ValueError):
            fit_nfw(prof, min_counts=1000)


class TestAngularPowerSpectrum:
    def test_monopole_only_for_uniform_map(self):
        from repro.analysis import angular_power_spectrum

        sky = AngularMap(n_theta=24, n_phi=48)
        sky.data[:] = 3.0  # uniform surface density
        c = angular_power_spectrum(sky, ell_max=4)
        # monopole: a_00 = 3 * sqrt(4 pi) -> C_0 = 9 * 4 pi
        assert c[0] == pytest.approx(9.0 * 4 * math.pi, rel=1e-3)
        assert np.all(c[1:] < 1e-6 * c[0])

    def test_dipole_map(self):
        from repro.analysis import angular_power_spectrum

        sky = AngularMap(n_theta=32, n_phi=64)
        theta = (np.arange(32) + 0.5) * math.pi / 32
        sky.data[:] = np.cos(theta)[:, None]  # pure Y_10 shape
        c = angular_power_spectrum(sky, ell_max=4)
        assert c[1] > 100 * max(c[0], c[2], c[3], c[4])

    def test_parseval_consistency(self):
        """sum (2l+1) C_l ~ integral |map|^2 dOmega for band-limited maps."""
        from repro.analysis import angular_power_spectrum

        rng = np.random.default_rng(11)
        sky = AngularMap(n_theta=32, n_phi=64)
        # band-limited random map: sum of low-ell harmonics
        from scipy.special import sph_harm_y

        theta = (np.arange(32) + 0.5) * math.pi / 32
        phi = (np.arange(64) + 0.5) * 2 * math.pi / 64
        tt, pp = np.meshgrid(theta, phi, indexing="ij")
        data = np.zeros_like(tt)
        for ell in range(4):
            for m in range(-ell, ell + 1):
                data += rng.normal() * np.real(sph_harm_y(ell, m, tt, pp))
        sky.data[:] = data
        c = angular_power_spectrum(sky, ell_max=5)
        lhs = sum((2 * l + 1) * c[l] for l in range(6))
        rhs = float(np.sum(sky.data**2 * sky.pixel_solid_angle))
        assert lhs == pytest.approx(rhs, rel=0.05)
