"""Two-point correlation function tests."""

import numpy as np
import pytest

from repro.analysis import (
    landy_szalay,
    natural_estimator,
    pair_counts,
    xi_from_power,
)
from repro.cosmology import PLANCK18, LinearPower


class TestPairCounts:
    def test_known_pair(self):
        pos = np.array([[1.0, 1.0, 1.0], [1.5, 1.0, 1.0], [9.0, 9.0, 9.0]])
        edges = np.array([0.1, 1.0, 3.0])
        counts = pair_counts(pos, edges, box=10.0)
        assert counts[0] == 1  # the 0.5-separation pair
        # (1,1,1)-(9,9,9): periodic separation sqrt(3*4)=3.46 > 3 -> not counted
        assert counts.sum() == 1

    def test_periodic_separation(self):
        pos = np.array([[0.2, 5.0, 5.0], [9.8, 5.0, 5.0]])
        counts = pair_counts(pos, np.array([0.1, 1.0]), box=10.0)
        assert counts[0] == 1  # wraps to separation 0.4

    def test_cross_counts(self):
        a = np.array([[1.0, 1.0, 1.0]])
        b = np.array([[1.4, 1.0, 1.0], [5.0, 5.0, 5.0]])
        counts = pair_counts(a, np.array([0.1, 1.0]), box=10.0, pos2=b)
        assert counts[0] == 1

    def test_total_pairs_random(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 10, (100, 3))
        edges = np.array([0.0001, 10.0 * np.sqrt(3) / 2])
        counts = pair_counts(pos, edges, box=10.0)
        # all unordered pairs lie within half the box diagonal
        assert counts.sum() == 100 * 99 / 2


class TestEstimators:
    def test_random_field_has_no_correlation(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 50, (3000, 3))
        edges = np.linspace(1.0, 10.0, 8)
        xi = natural_estimator(pos, edges, box=50.0)
        assert np.abs(xi).max() < 0.2

    def test_clustered_field_positive_xi(self):
        rng = np.random.default_rng(2)
        centers = rng.uniform(0, 50, (30, 3))
        pts = (
            centers[rng.integers(0, 30, 3000)]
            + rng.normal(0, 1.0, (3000, 3))
        )
        pos = np.mod(pts, 50.0)
        edges = np.array([0.5, 2.0, 5.0, 15.0])
        xi = natural_estimator(pos, edges, box=50.0)
        assert xi[0] > 1.0  # strong small-scale clustering
        assert xi[0] > xi[-1]  # decreasing with scale

    def test_landy_szalay_agrees_with_natural_on_periodic_box(self):
        rng = np.random.default_rng(3)
        centers = rng.uniform(0, 40, (20, 3))
        pos = np.mod(
            centers[rng.integers(0, 20, 2000)] + rng.normal(0, 1.5, (2000, 3)),
            40.0,
        )
        randoms = rng.uniform(0, 40, (4000, 3))
        edges = np.array([1.0, 3.0, 8.0])
        xi_n = natural_estimator(pos, edges, box=40.0)
        xi_ls = landy_szalay(pos, randoms, edges, box=40.0)
        np.testing.assert_allclose(xi_ls, xi_n, atol=0.3)


class TestAnalyticTransform:
    def test_xi_positive_small_scales(self):
        power = LinearPower(PLANCK18)
        xi = xi_from_power(np.array([1.0, 5.0, 20.0]), power)
        assert np.all(xi > 0)
        assert xi[0] > xi[1] > xi[2]  # decreasing

    def test_xi_amplitude_at_8mpc(self):
        """sigma8 = 0.81 implies xi(8 Mpc/h) ~ O(0.5-1.5)."""
        power = LinearPower(PLANCK18)
        xi8 = xi_from_power(np.array([8.0]), power)[0]
        assert 0.3 < xi8 < 2.0

    def test_growth_scaling(self):
        power = LinearPower(PLANCK18)
        r = np.array([10.0])
        d = PLANCK18.growth_factor(0.5)
        np.testing.assert_allclose(
            xi_from_power(r, power, a=0.5),
            xi_from_power(r, power, a=1.0) * d**2,
            rtol=1e-6,
        )
