"""HOD mock-catalog tests."""

import numpy as np
import pytest

from repro.analysis import (
    FOFCatalog,
    HODParams,
    expected_number_density,
    populate_halos,
    virial_velocity,
)


def make_halo_catalog(masses, box=100.0, seed=0):
    rng = np.random.default_rng(seed)
    n = len(masses)
    return FOFCatalog(
        labels=np.repeat(np.arange(n), 1),
        n_halos=n,
        halo_mass=np.asarray(masses, dtype=np.float64),
        halo_size=np.full(n, 100),
        halo_center=rng.uniform(0, box, (n, 3)),
        halo_vel=rng.normal(0, 300, (n, 3)),
    )


class TestHODParams:
    def test_central_step(self):
        hod = HODParams(log_m_min=12.0, sigma_logm=0.25)
        assert hod.mean_centrals(1e12) == pytest.approx(0.5)
        assert hod.mean_centrals(1e14) == pytest.approx(1.0, abs=1e-6)
        assert hod.mean_centrals(1e10) < 1e-6

    def test_satellite_power_law(self):
        hod = HODParams(log_m0=12.2, log_m1=13.3, alpha=1.0)
        m1 = 10**13.3 + 10**12.2
        assert hod.mean_satellites(m1) == pytest.approx(
            hod.mean_centrals(m1), rel=1e-6
        )
        assert hod.mean_satellites(1e12) == 0.0

    def test_satellites_increase_with_mass(self):
        hod = HODParams()
        m = np.logspace(12.5, 15, 10)
        ns = hod.mean_satellites(m)
        assert np.all(np.diff(ns) > 0)


class TestPopulation:
    def test_massive_halos_hosted(self):
        cat = make_halo_catalog([1e14, 2e14, 5e14])
        gals = populate_halos(cat, box=100.0, rng=np.random.default_rng(1))
        # every cluster-mass halo gets a central
        assert gals.n_centrals == 3
        assert gals.n_satellites > 3  # clusters host satellites

    def test_low_mass_halos_empty(self):
        cat = make_halo_catalog([1e10, 2e10, 5e10])
        gals = populate_halos(cat, box=100.0, rng=np.random.default_rng(2))
        assert len(gals) == 0

    def test_mean_counts_match_hod(self):
        """Over many halos the realized counts track the HOD expectation."""
        masses = np.full(400, 1e14)
        cat = make_halo_catalog(masses)
        gals = populate_halos(cat, box=500.0, rng=np.random.default_rng(3))
        hod = HODParams()
        expected = 400 * (hod.mean_centrals(1e14) + hod.mean_satellites(1e14))
        assert len(gals) == pytest.approx(expected, rel=0.1)

    def test_expected_number_density(self):
        masses = np.full(400, 1e14)
        n_bar = expected_number_density(masses, box=500.0)
        cat = make_halo_catalog(masses)
        gals = populate_halos(cat, box=500.0, rng=np.random.default_rng(4))
        assert len(gals) / 500.0**3 == pytest.approx(n_bar, rel=0.1)

    def test_satellites_within_virial_radius(self):
        box = 200.0
        cat = make_halo_catalog([1e15])
        rho_mean = 1e15 / box**3
        gals = populate_halos(cat, box=box, rng=np.random.default_rng(5),
                              rho_mean=rho_mean)
        r_vir = (3 * 1e15 / (4 * np.pi * 200 * rho_mean)) ** (1 / 3)
        d = gals.positions - cat.halo_center[0]
        d -= box * np.round(d / box)
        r = np.linalg.norm(d, axis=1)
        assert r.max() <= r_vir * 1.0001

    def test_satellite_velocity_dispersion(self):
        box = 200.0
        cat = make_halo_catalog([1e15] * 50, box=box)
        rho_mean = 50 * 1e15 / box**3
        gals = populate_halos(cat, box=box, rng=np.random.default_rng(6),
                              rho_mean=rho_mean)
        sats = ~gals.is_central
        dv = gals.velocities[sats] - cat.halo_vel[gals.host_halo[sats]]
        r_vir = (3 * 1e15 / (4 * np.pi * 200 * rho_mean)) ** (1 / 3)
        sigma_exp = virial_velocity(1e15, r_vir) / np.sqrt(3.0)
        assert dv.std() == pytest.approx(sigma_exp, rel=0.15)

    def test_empty_catalog(self):
        cat = make_halo_catalog([])
        gals = populate_halos(cat, box=100.0)
        assert len(gals) == 0

    def test_galaxy_clustering_exceeds_halo_clustering(self):
        """Satellites inside halos boost small-scale clustering — the
        one-halo term that makes HOD catalogs useful."""
        from repro.analysis import natural_estimator

        rng = np.random.default_rng(7)
        box = 300.0
        masses = 10 ** rng.uniform(13.5, 15.0, 120)
        cat = make_halo_catalog(masses, box=box, seed=8)
        gals = populate_halos(cat, box=box, rng=rng)
        edges = np.array([0.5, 2.0, 8.0])
        xi_gal = natural_estimator(gals.positions, edges, box=box)
        xi_halo = natural_estimator(cat.halo_center, edges, box=box)
        assert xi_gal[0] > xi_halo[0] + 1.0


class TestRedshiftSpace:
    def test_shift_magnitude(self):
        from repro.analysis import redshift_space_positions
        from repro.cosmology import PLANCK18

        pos = np.array([[50.0, 50.0, 50.0]])
        vel = np.array([[0.0, 0.0, 500.0]])
        s = redshift_space_positions(pos, vel, 100.0, PLANCK18, a=1.0)
        expected = 50.0 + 500.0 / PLANCK18.hubble(1.0)
        assert s[0, 2] == pytest.approx(expected)
        np.testing.assert_array_equal(s[0, :2], pos[0, :2])

    def test_fingers_of_god(self):
        """Virialized satellite velocities stretch halos along the line of
        sight in redshift space — the classic anisotropy signature."""
        from repro.analysis import redshift_space_positions
        from repro.cosmology import PLANCK18

        box = 200.0
        cat = make_halo_catalog([1e15] * 40, box=box, seed=9)
        cat.halo_vel[:] = 0.0  # isolate the satellite dispersion
        gals = populate_halos(cat, box=box, rng=np.random.default_rng(10),
                              rho_mean=40 * 1e15 / box**3)
        s = redshift_space_positions(
            gals.positions, gals.velocities, box, PLANCK18, a=1.0
        )
        sats = ~gals.is_central
        d_real = gals.positions[sats] - cat.halo_center[gals.host_halo[sats]]
        d_red = s[sats] - cat.halo_center[gals.host_halo[sats]]
        for d in (d_real, d_red):
            d -= box * np.round(d / box)
        # real space isotropic; redshift space elongated along z
        assert np.std(d_real[:, 2]) == pytest.approx(
            np.std(d_real[:, 0]), rel=0.2
        )
        assert np.std(d_red[:, 2]) > 2.0 * np.std(d_red[:, 0])
