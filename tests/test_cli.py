"""CLI (`python -m repro`) tests."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_landscape(self, capsys):
        assert main(["landscape"]) == 0
        out = capsys.readouterr().out
        assert "Frontier-E" in out
        assert "capability leap" in out

    def test_scaling(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "9000" in out
        assert "513.1" in out

    def test_utilization(self, capsys):
        assert main(["utilization"]) == 0
        out = capsys.readouterr().out
        assert "NVIDIA" in out
        assert "low z Flat" in out

    def test_demo_runs(self, capsys):
        assert main(["demo", "--n", "5", "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "step 0" in out
        assert "final:" in out

    def test_demo_trace_export(self, capsys, tmp_path):
        out_json = tmp_path / "demo.trace.json"
        assert main(["demo", "--n", "5", "--steps", "1",
                     "--trace", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "perfetto" in out

        from repro.observe import load_chrome_trace, slice_intervals

        doc = load_chrome_trace(str(out_json))
        assert doc["traceEvents"], "trace must not be empty"
        # the serial driver emits one step span per PM step
        steps = [ev for ev in doc["traceEvents"]
                 if ev.get("name") == "step" and ev.get("ph") == "X"]
        assert len(steps) == 1
        assert slice_intervals(doc, "step")

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCampaignCommand:
    def test_model_summary_unchanged(self, capsys):
        assert main(["campaign"]) == 0
        out = capsys.readouterr().out
        assert "Frontier-E campaign model" in out
        assert "component fractions" in out

    def test_model_trace_export(self, capsys, tmp_path):
        out_json = tmp_path / "model.trace.json"
        assert main(["campaign", "--model-trace", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "model trace:" in out

        from repro.observe import load_chrome_trace
        from repro.observe.clock import SIM_PID

        doc = load_chrome_trace(str(out_json))
        steps = [ev for ev in doc["traceEvents"]
                 if ev.get("name") == "step" and ev.get("ph") == "X"]
        assert len(steps) == 625
        assert all(ev["pid"] == SIM_PID for ev in steps)

    def test_spec_run(self, capsys, tmp_path):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "workers": 2,
            "base": {"n_per_dim": 4, "pm_grid": 8, "tenant": "sweep"},
            "sweep": {"seed": [1, 2]},
            "jobs": [{"name": "vip", "tenant": "alice", "priority": 0}],
        }))
        trace = tmp_path / "campaign.trace.json"
        assert main(["campaign", "--spec", str(spec),
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "completed 3/3" in out
        assert "universes/h" in out
        assert "alice" in out and "sweep" in out
        assert "artifact cache" in out

        from repro.observe import load_chrome_trace

        doc = load_chrome_trace(str(trace))
        names = {ev.get("name") for ev in doc["traceEvents"]}
        assert "campaign/job" in names
        assert "campaign/run" in names

    def test_spec_workers_override(self, capsys, tmp_path):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(
            {"base": {"n_per_dim": 4, "pm_grid": 8}}
        ))
        assert main(["campaign", "--spec", str(spec), "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 jobs on 1 workers" in out


class TestEnsembleCommand:
    def test_ensemble_plan(self, capsys):
        assert main(["ensemble", "--budget", "2e7"]) == 0
        out = capsys.readouterr().out
        assert "Frontier-E twins" in out
        assert "covariance precision" in out

    def test_ensemble_gravity_only(self, capsys):
        assert main(["ensemble", "--budget", "1e7", "--gravity-only"]) == 0
        out = capsys.readouterr().out
        assert "members" in out
