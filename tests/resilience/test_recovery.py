"""End-to-end rank-failure recovery on the live distributed driver.

The headline chaos scenario of the resilience subsystem: a 4-rank
overlap+subcycle run with armed sanitizers loses a rank mid–PM-interval
(inside a ``rung/<r>`` substep phase), the coordinator restores from the
buddy-replicated NVMe tier, re-decomposes onto the 3 survivors, and the
final state is bit-identical to a clean 3-rank restart from the same
checkpoint — with a clean in-flight-request teardown audit.
"""

import numpy as np
import pytest

from repro.campaign.runner import state_hash
from repro.cosmology import PLANCK18
from repro.observe import Observatory
from repro.parallel.comm import RankFailure
from repro.parallel.distributed_sim import (
    DistributedConfig,
    DistributedSimulation,
)
from repro.resilience import (
    FaultPlan,
    KillSpec,
    RecoveryCoordinator,
    TieredCheckpointStore,
)

BOX = 120.0


def clustered_ics(seed=7, n_blob=24):
    """Four gaussian blobs: clustered enough to drive deep rungs."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, BOX, size=(4, 3))
    pts = [np.mod(c + rng.normal(0, 6.0, size=(n_blob, 3)), BOX)
           for c in centers]
    pos = np.vstack(pts)
    vel = rng.normal(0, 50.0, size=pos.shape)
    mass = np.full(len(pos), 1.0e10)
    return pos, vel, mass


def chaos_config(n_pm_steps=3):
    # r_split_cells=0.75 keeps 2*cutoff below the narrowest rank domain
    # of the *shrunken* decompositions (3-rank width 40, 2-rank width 60)
    return DistributedConfig(
        box=BOX, pm_grid=32, a_init=0.3, a_final=0.3 + 0.04 / 3 * n_pm_steps,
        n_pm_steps=n_pm_steps, cosmo=PLANCK18, r_split_cells=0.75,
        max_rung=3, comm_mode="overlap", subcycle=True, sanitize=True,
    )


class TestHeadlineChaosRun:
    def test_midstep_kill_recovers_bit_identically(self, tmp_path):
        pos, vel, mass = clustered_ics()
        cfg = chaos_config()
        store = TieredCheckpointStore(tmp_path, n_nodes=4)
        plan = FaultPlan.single(rank=2, step=1, phase="rung")
        obs = Observatory(tracing=True)
        coord = RecoveryCoordinator(store, observe=obs)

        res = coord.run(cfg, 4, pos, vel, mass, fault_plan=plan)

        # one recovery, killed mid–PM-interval in a subcycle phase
        assert res.n_attempts == 2 and len(res.recoveries) == 1
        rec = res.recoveries[0]
        assert rec.failed_rank == 2 and rec.failed_step == 1
        assert rec.failed_phase.startswith("rung/")
        # NVMe buddy shards survive a single node death
        assert rec.tier == "nvme" and rec.restored_step == 0
        assert rec.ranks_before == 4 and rec.ranks_after == 3
        assert res.n_ranks_final == 3
        # cancellation audit: the abort cascade settled every request
        assert rec.n_requests > 0 and rec.n_unsettled == 0
        assert coord.last_sim.world.sanitizer.findings == []

        # bit-identity: recovered state == clean 3-rank restart from the
        # same checkpoint under the resumed segment's exact config
        point = store.restorable_at(rec.restored_step)
        arrays, _meta = store.restore(point)
        ref = DistributedSimulation(rec.resumed_config, rec.ranks_after)
        rpos, rvel, _rids = ref.run(arrays["pos"], arrays["vel"],
                                    arrays["mass"])
        assert state_hash(pos=rpos, vel=rvel) == \
            state_hash(pos=res.pos, vel=res.vel)

        # every recovery-pipeline phase landed in the exported trace
        trace = obs.export_chrome_trace()
        names = {ev.get("name") for ev in trace["traceEvents"]}
        for phase in ("detect", "cancel", "restore", "redistribute",
                      "resume"):
            assert f"resilience/{phase}" in names
        assert "io/checkpoint" in names


class TestRecoveryPaths:
    def test_double_failure_walks_down_to_two_ranks(self, tmp_path):
        pos, vel, mass = clustered_ics(seed=11)
        cfg = chaos_config()
        store = TieredCheckpointStore(tmp_path, n_nodes=4)
        plan = FaultPlan([KillSpec(2, 1, "rung"), KillSpec(0, 2)])
        coord = RecoveryCoordinator(store)

        res = coord.run(cfg, 4, pos, vel, mass, fault_plan=plan)

        assert [r.ranks_after for r in res.recoveries] == [3, 2]
        assert res.n_ranks_final == 2
        # the second restore reads shards the 3-rank world wrote
        assert res.recoveries[1].tier == "nvme"
        assert res.recoveries[1].restored_step >= 1

    def test_failure_before_any_checkpoint_cold_restarts(self, tmp_path):
        pos, vel, mass = clustered_ics(seed=5)
        cfg = chaos_config(n_pm_steps=2)
        store = TieredCheckpointStore(tmp_path, n_nodes=4)
        # kill during step 0: the step hook has not run yet, nothing is
        # on disk, so recovery is a cold restart on 3 ranks
        plan = FaultPlan.single(rank=1, step=0, phase="short_range")
        coord = RecoveryCoordinator(store)

        res = coord.run(cfg, 4, pos, vel, mass, fault_plan=plan)

        rec = res.recoveries[0]
        assert rec.tier == "initial" and rec.restored_step is None
        # cold restart == clean 3-rank run of the whole segment
        ref = DistributedSimulation(cfg, 3)
        rpos, rvel, _ = ref.run(pos.copy(), vel.copy(), mass.copy())
        assert state_hash(pos=rpos, vel=rvel) == \
            state_hash(pos=res.pos, vel=res.vel)

    def test_failure_budget_exhausted_reraises(self, tmp_path):
        pos, vel, mass = clustered_ics(seed=5)
        cfg = chaos_config(n_pm_steps=2)
        store = TieredCheckpointStore(tmp_path, n_nodes=4)
        plan = FaultPlan.single(rank=1, step=0)
        coord = RecoveryCoordinator(store, max_failures=0)
        with pytest.raises(RankFailure) as ei:
            coord.run(cfg, 4, pos, vel, mass, fault_plan=plan)
        assert ei.value.rank == 1

    def test_store_smaller_than_world_rejected(self, tmp_path):
        store = TieredCheckpointStore(tmp_path, n_nodes=2)
        coord = RecoveryCoordinator(store)
        pos, vel, mass = clustered_ics()
        with pytest.raises(ValueError):
            coord.run(chaos_config(), 4, pos, vel, mass)

    def test_recovery_report_counts_pipeline_phases(self, tmp_path):
        from repro.observe.derived import recovery_report

        pos, vel, mass = clustered_ics()
        cfg = chaos_config()
        store = TieredCheckpointStore(tmp_path, n_nodes=4)
        obs = Observatory()
        coord = RecoveryCoordinator(store, observe=obs)
        coord.run(cfg, 4, pos, vel, mass,
                  fault_plan=FaultPlan.single(rank=2, step=1, phase="rung"))
        rows = recovery_report(obs.registry)
        assert [r.phase for r in rows] == [
            "resilience/detect", "resilience/cancel", "resilience/restore",
            "resilience/redistribute", "resilience/resume",
        ]
        assert all(r.seconds > 0 for r in rows)
