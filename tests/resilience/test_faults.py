"""Fault injection: kill specs, MTTI plans, and typed rank failures."""

import time

import numpy as np
import pytest

from repro.cosmology import PLANCK18
from repro.parallel.comm import RankFailure, World
from repro.parallel.distributed_sim import (
    DistributedConfig,
    DistributedSimulation,
)
from repro.resilience import DEFAULT_KILL_PHASES, FaultPlan, KillSpec


class TestKillSpec:
    def test_exact_match(self):
        k = KillSpec(rank=2, step=1, phase="short_range")
        assert k.matches(2, 1, "short_range")
        assert not k.matches(1, 1, "short_range")
        assert not k.matches(2, 0, "short_range")
        assert not k.matches(2, 1, "long_range")

    def test_prefix_matches_rung_substeps(self):
        k = KillSpec(rank=0, step=3, phase="rung")
        assert k.matches(0, 3, "rung/0")
        assert k.matches(0, 3, "rung/2")
        assert not k.matches(0, 3, "migration")

    def test_no_phase_matches_any_phase(self):
        k = KillSpec(rank=1, step=0)
        assert k.matches(1, 0, "long_range")
        assert k.matches(1, 0, "rung/1")


class TestFaultPlan:
    def test_fires_once(self):
        plan = FaultPlan.single(rank=0, step=0, phase="short_range")
        with pytest.raises(RankFailure) as ei:
            plan.enter(0, 0, "short_range")
        assert ei.value.rank == 0 and ei.value.step == 0
        # the same point re-entered (e.g. after a cold restart) is safe
        plan.enter(0, 0, "short_range")
        assert plan.fired == [KillSpec(0, 0, "short_range")]

    def test_step_offset_maps_local_to_global(self):
        plan = FaultPlan.single(rank=1, step=5, phase="migration")
        plan.step_offset = 3
        plan.enter(1, 5, "migration")  # gstep 8: no match
        with pytest.raises(RankFailure) as ei:
            plan.enter(1, 2, "migration")  # gstep 5: fires
        assert ei.value.step == 5

    def test_parse(self):
        plan = FaultPlan.parse("2:1:rung, 0:3")
        assert plan.kills == [KillSpec(2, 1, "rung"), KillSpec(0, 3, None)]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("2")

    def test_from_mtti_deterministic(self):
        a = FaultPlan.from_mtti(2.0, n_steps=50, n_ranks=4, seed=9)
        b = FaultPlan.from_mtti(2.0, n_steps=50, n_ranks=4, seed=9)
        assert a.kills == b.kills and a.kills
        for k in a.kills:
            assert 0 <= k.rank < 4
            assert 0 <= k.step < 50
            assert k.phase in DEFAULT_KILL_PHASES
        c = FaultPlan.from_mtti(2.0, n_steps=50, n_ranks=4, seed=10)
        assert c.kills != a.kills

    def test_comm_phase_kill_fires_inside_collective(self):
        plan = FaultPlan.single(rank=1, step=0, phase="comm")
        world = World(2, fault_plan=plan)

        def fn(comm):
            plan.enter(comm.rank, 0, "short_range")  # sets current point
            comm.allreduce(1.0)
            return comm.rank

        with pytest.raises(RankFailure) as ei:
            world.run(fn, timeout=30.0)
        assert ei.value.rank == 1
        assert ei.value.phase == "comm"
        assert "injected fault" in str(ei.value)


class TestHungRank:
    def test_timeout_raises_typed_failure_with_last_phase(self):
        world = World(2)

        def fn(comm):
            world.note_phase(comm.rank, 4, "long_range")
            if comm.rank == 1:
                time.sleep(8.0)  # never reports back within the timeout
            return comm.rank

        with pytest.raises(RankFailure) as ei:
            world.run(fn, timeout=0.3)
        err = ei.value
        assert err.rank == 1
        assert err.step == 4
        assert err.phase == "long_range"
        assert "hung-rank timeout" in str(err)

    def test_comm_timeout_configurable_via_config(self, monkeypatch):
        """DistributedConfig.comm_timeout_s reaches World.run(timeout=)."""
        captured = {}
        orig = World.run

        def spy(self, fn, *args, timeout=600.0):
            captured["timeout"] = timeout
            return orig(self, fn, *args, timeout=timeout)

        monkeypatch.setattr(World, "run", spy)
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 120.0, (16, 3))
        vel = rng.normal(0, 20.0, (16, 3))
        mass = np.full(16, 1.0e10)
        cfg = DistributedConfig(
            box=120.0, pm_grid=32, a_init=0.3, a_final=0.32, n_pm_steps=1,
            cosmo=PLANCK18, r_split_cells=1.0, comm_timeout_s=77.0,
        )
        DistributedSimulation(cfg, 2).run(pos, vel, mass)
        assert captured["timeout"] == 77.0
