"""Tiered checkpoint store: buddy replication, torn writes, tier choice."""

import os

import numpy as np
import pytest

from repro.campaign.runner import state_hash
from repro.resilience import TieredCheckpointStore


def _shard_arrays(rng, n, id0):
    return {
        "pos": rng.uniform(0, 100.0, (n, 3)),
        "vel": rng.normal(0, 10.0, (n, 3)),
        "mass": np.full(n, 1.0e10),
        "u": np.zeros(n),
        "ids": np.arange(id0, id0 + n, dtype=np.int64),
        "gas": np.zeros(n, dtype=np.int8),
    }


def _write_step(store, step, n_nodes, rng, a=0.3, shuffle=False):
    """Buddy-replicated NVMe shards + a PFS global of the same state."""
    meta = {"step": step, "a": a, "n_shards": n_nodes}
    shards = []
    for s in range(n_nodes):
        arrays = _shard_arrays(rng, 5, id0=100 * s)
        shards.append(arrays)
        store.write_shard(step, s, arrays, meta, node=s,
                         buddy_node=(s + 1) % n_nodes)
    merged = {
        k: np.concatenate([sh[k] for sh in shards]) for k in shards[0]
    }
    if shuffle:
        order = rng.permutation(len(merged["ids"]))
        merged = {k: v[order] for k, v in merged.items()}
    store.write_global(step, merged, meta)
    return merged


def _corrupt(path):
    with open(path, "r+b") as fh:
        fh.seek(64)
        fh.write(b"\xde\xad\xbe\xef" * 8)


class TestBuddyReplication:
    def test_single_node_loss_keeps_nvme_restorable(self, tmp_path):
        store = TieredCheckpointStore(tmp_path, n_nodes=4)
        rng = np.random.default_rng(1)
        merged = _write_step(store, 0, 4, rng)
        store.mark_lost(2)
        point = store.restorable_at(0)
        assert point is not None and point.tier == "nvme"
        arrays, meta = store.restore(point)
        assert meta["n_shards"] == 4
        order = np.argsort(merged["ids"], kind="stable")
        ref = {k: v[order] for k, v in merged.items()}
        assert state_hash(**arrays) == state_hash(**ref)

    def test_adjacent_double_loss_falls_back_to_pfs(self, tmp_path):
        # shard 1's two copies live on nodes 1 and 2; losing both tears
        # the NVMe set and the restore must come off the PFS global
        store = TieredCheckpointStore(tmp_path, n_nodes=4)
        rng = np.random.default_rng(2)
        _write_step(store, 0, 4, rng)
        store.mark_lost(1)
        store.mark_lost(2)
        point = store.restorable_at(0)
        assert point is not None and point.tier == "pfs"

    def test_nvme_and_pfs_restores_bit_identical(self, tmp_path):
        # the PFS global is written in a shuffled row order; the id sort
        # in restore() must still produce the exact NVMe state
        store = TieredCheckpointStore(tmp_path, n_nodes=3)
        rng = np.random.default_rng(3)
        _write_step(store, 0, 3, rng, shuffle=True)
        nvme = store.restorable_at(0)
        assert nvme.tier == "nvme"
        for node in range(3):
            store.mark_lost(node)
        pfs = store.restorable_at(0)
        assert pfs.tier == "pfs"
        a1, m1 = store.restore(nvme)
        a2, m2 = store.restore(pfs)
        assert state_hash(**a1) == state_hash(**a2)
        assert m1["a"] == m2["a"]


class TestTornWrites:
    def test_torn_latest_step_skipped_for_older_pfs(self, tmp_path):
        # step 0 lives only on the PFS; step 1's shard 0 is torn on both
        # of its copies -> latest_restorable must reject step 1 entirely
        store = TieredCheckpointStore(tmp_path, n_nodes=3)
        rng = np.random.default_rng(4)
        meta0 = {"step": 0, "a": 0.30, "n_shards": 3}
        store.write_global(0, _shard_arrays(rng, 9, 0), meta0)
        _write_step(store, 1, 3, rng, a=0.32)
        os.remove(store.global_path(1))  # no PFS rescue at step 1
        _corrupt(store.shard_path(0, 1, 0))
        _corrupt(store.shard_path(1, 1, 0))
        point = store.latest_restorable()
        assert point is not None
        assert point.step == 0 and point.tier == "pfs"
        _, meta = store.restore(point)
        assert meta["a"] == pytest.approx(0.30)

    def test_corrupt_copy_falls_back_to_buddy(self, tmp_path):
        store = TieredCheckpointStore(tmp_path, n_nodes=3)
        rng = np.random.default_rng(5)
        _write_step(store, 0, 3, rng)
        _corrupt(store.shard_path(0, 0, 0))  # primary copy of shard 0
        point = store.restorable_at(0)
        assert point is not None and point.tier == "nvme"
        # the chosen path for shard 0 is the buddy copy on node 1
        assert "node001" in point.paths[0]

    def test_all_tiers_gone_returns_none(self, tmp_path):
        store = TieredCheckpointStore(tmp_path, n_nodes=2)
        assert store.latest_restorable() is None
        rng = np.random.default_rng(6)
        _write_step(store, 0, 2, rng)
        os.remove(store.global_path(0))
        store.mark_lost(0)
        store.mark_lost(1)
        assert store.latest_restorable() is None


class TestRoundTrip:
    def test_mtti_faulted_cadence_roundtrip(self, tmp_path):
        """Writes at several steps under random node losses: the latest
        restorable point is always the newest step with a complete set,
        and restores hash-identically to what was written."""
        store = TieredCheckpointStore(tmp_path, n_nodes=4)
        rng = np.random.default_rng(7)
        written = {}
        for step in range(4):
            merged = _write_step(store, step, 4, rng, a=0.3 + 0.01 * step)
            idx = np.argsort(merged["ids"], kind="stable")
            written[step] = {k: v[idx] for k, v in merged.items()}
        store.mark_lost(3)
        point = store.latest_restorable()
        assert point.step == 3
        arrays, meta = store.restore(point)
        assert state_hash(**arrays) == state_hash(**written[3])
        assert meta["step"] == 3

    def test_retention_prunes_old_nvme_steps(self, tmp_path):
        store = TieredCheckpointStore(tmp_path, n_nodes=2, retention=2)
        rng = np.random.default_rng(8)
        for step in range(4):
            _write_step(store, step, 2, rng)
        kept = {s for s, _ in store._node_shards(0)}
        assert kept == {2, 3}
