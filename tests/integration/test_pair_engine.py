"""Pair-interaction engine wired into the simulation driver.

Checks the amortization contract of paper Section IV-B1: interaction lists
are built once per PM step and reused across all subcycle force
evaluations, with the Verlet skin absorbing intra-step drift.
"""

import numpy as np

from repro.core.particles import Particles
from repro.core.simulation import Simulation, SimulationConfig


def _uniform_gas(n_side=5, box=10.0, seed=3):
    rng = np.random.default_rng(seed)
    g = (np.indices((n_side,) * 3).reshape(3, -1).T + 0.5) * (box / n_side)
    pos = np.mod(g + rng.normal(scale=0.01 * box / n_side, size=g.shape), box)
    n = len(pos)
    return Particles(
        pos=pos,
        vel=np.zeros((n, 3)),
        mass=np.full(n, 1.0),
        species=np.ones(n, dtype=np.int8),
        u=np.full(n, 10.0),
    )


class TestHydroListAmortization:
    def test_at_most_one_hydro_build_per_pm_step_static(self):
        """Static, pressure-balanced gas: zero drift, so every subcycle of
        a PM step must reuse the list built for that step."""
        box = 10.0
        parts = _uniform_gas(box=box)
        cfg = SimulationConfig(
            box=box, pm_grid=8, a_init=0.5, a_final=0.7, n_pm_steps=3,
            gravity=False, static=True, max_rung=3,
        )
        sim = Simulation(cfg, parts)
        cache = sim._hydro_cache
        builds_before = cache.n_builds
        for _ in range(cfg.n_pm_steps):
            b0 = cache.n_builds
            rec = sim.pm_step()
            assert rec.n_substeps >= 2  # the amortization actually matters
            assert cache.n_builds - b0 <= 1
        assert cache.n_queries > cache.n_builds - builds_before

    def test_gravity_list_built_at_step_boundary_only(self):
        box = 12.0
        rng = np.random.default_rng(11)
        n = 160
        parts = Particles(
            pos=rng.uniform(0, box, size=(n, 3)),
            vel=np.zeros((n, 3)),
            mass=np.full(n, 5.0),
            species=np.zeros(n, dtype=np.int8),
        )
        cfg = SimulationConfig(
            box=box, pm_grid=8, a_init=0.3, a_final=0.4, n_pm_steps=2,
            static=True,
        )
        sim = Simulation(cfg, parts)
        sim.run()
        cache = sim._grav_cache
        # rebuilds can only come from drift past the skin, never from the
        # per-subcycle force evaluations themselves
        assert cache.n_builds <= 1 + cfg.n_pm_steps
        assert cache.n_queries >= cache.n_builds


class TestHydroTimerKey:
    def test_hydro_timer_separated_from_short_range(self):
        box = 10.0
        parts = _uniform_gas(box=box)
        cfg = SimulationConfig(
            box=box, pm_grid=8, a_init=0.5, a_final=0.6, n_pm_steps=1,
            gravity=False, static=True,
        )
        sim = Simulation(cfg, parts)
        rec = sim.pm_step()
        assert "hydro" in rec.timers
        assert rec.timers["hydro"] > 0.0
        # gravity off: hydro work must not leak into the gravity timer
        assert rec.timers["short_range"] == 0.0
        assert "hydro" in sim.timing_fractions()
