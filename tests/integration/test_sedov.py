"""Sedov-Taylor point explosion: shock position vs the similarity solution.

CRKSPH's design goal is "accurately modeling shocks and fluid
instabilities" (paper Section IV-A).  A point injection of energy E into
a cold uniform gas drives a spherical blast whose radius follows the
Sedov-Taylor similarity solution r_s(t) = xi0 (E t^2 / rho)^(1/5); for
gamma = 5/3, xi0 ~ 1.15.  The test verifies the simulated shock tracks
that law and that the blast stays spherical.
"""

import numpy as np
import pytest

from repro.core.particles import Particles, Species
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.sph.eos import IdealGasEOS

GAMMA = 5.0 / 3.0
XI0 = 1.15  # Sedov constant for gamma = 5/3


def build_sedov(n_per_dim=14, box=2.0, e_blast=10.0):
    spacing = box / n_per_dim
    coords = (np.arange(n_per_dim) + 0.5) * spacing
    g = np.meshgrid(coords, coords, coords, indexing="ij")
    pos = np.stack([c.ravel() for c in g], axis=-1)
    n = len(pos)
    mass = np.full(n, 1.0 * spacing**3)  # rho = 1
    u = np.full(n, 1e-4)  # cold background

    # dump E into the few particles nearest the center (kernel-smoothed
    # injection, the standard SPH Sedov setup)
    center = np.full(3, box / 2.0)
    d = pos - center
    r = np.sqrt(np.einsum("na,na->n", d, d))
    hot = np.argsort(r)[:8]
    u[hot] += e_blast / (8 * mass[0])

    parts = Particles(
        pos=pos, vel=np.zeros((n, 3)), mass=mass,
        species=np.full(n, int(Species.GAS), dtype=np.int8), u=u,
    )
    return parts, center, spacing


def shock_radius(pos, vel, center, box):
    """Shock location estimate: radius of peak radial momentum density."""
    d = pos - center
    d -= box * np.round(d / box)
    r = np.sqrt(np.einsum("na,na->n", d, d))
    with np.errstate(invalid="ignore"):
        vr = np.einsum("na,na->n", vel, d) / np.maximum(r, 1e-12)
    edges = np.linspace(0.05, box / 2, 24)
    centers = 0.5 * (edges[:-1] + edges[1:])
    prof = np.zeros(len(centers))
    for i, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
        m = (r >= lo) & (r < hi)
        if m.any():
            prof[i] = vr[m].mean()
    return centers[int(np.argmax(prof))]


@pytest.mark.slow
def test_sedov_blast_follows_similarity_solution():
    e_blast = 10.0
    t_end = 0.06
    parts, center, spacing = build_sedov(e_blast=e_blast)
    box = 2.0
    cfg = SimulationConfig(
        box=box, pm_grid=8, a_init=0.0, a_final=t_end, n_pm_steps=6,
        gravity=False, hydro=True, static=True, max_rung=4,
        n_neighbors=32, cfl=0.15,
    )
    sim = Simulation(cfg, parts)
    sim.eos = IdealGasEOS(gamma=GAMMA)
    sim.run()

    p = sim.particles
    assert np.all(np.isfinite(p.pos)) and np.all(np.isfinite(p.vel))

    r_shock = shock_radius(p.pos, p.vel, center, box)
    r_exact = XI0 * (e_blast * t_end**2 / 1.0) ** 0.2
    # SPH smears the shock over ~2h; binning quantizes further
    assert r_shock == pytest.approx(r_exact, rel=0.20), (
        f"shock at {r_shock:.3f}, Sedov predicts {r_exact:.3f}"
    )

    # sphericity: radial momentum flux nearly equal along the three axes
    d = p.pos - center
    d -= box * np.round(d / box)
    r = np.sqrt(np.einsum("na,na->n", d, d))
    shell = (r > 0.5 * r_shock) & (r < 1.5 * r_shock)
    flux = np.abs(p.vel[shell]).mean(axis=0)
    assert flux.max() / max(flux.min(), 1e-12) < 1.5

    # energy bookkeeping: the u >= 0 clamp behind the strong shock and
    # mid-step rung promotion each inject O(10%) energy at this resolution
    # (they vanish with particle count); the budget must stay near E
    e_tot = p.kinetic_energy() + p.internal_energy()
    assert e_tot == pytest.approx(e_blast, rel=0.25)
