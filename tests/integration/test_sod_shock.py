"""Sod shock tube: CRKSPH vs the exact Riemann solution.

The standard validation problem for the hydro solver (Frontiere et al.
2017 validate CRKSPH on exactly this class of test).  A quasi-1D periodic
double shock tube is evolved in static (Newtonian) mode and compared
against the analytic solution in density, velocity, and pressure.
"""

import numpy as np
import pytest

from repro.core.particles import Particles, Species
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.sph.eos import IdealGasEOS
from repro.core.sph.riemann import SOD_LEFT, SOD_RIGHT, sample_solution

GAMMA = 1.4


def build_sod_tube(d=1.0 / 28.0, width_cells=6):
    """Periodic double shock tube: dense slab in [0.5, 1.5) of a 2-box.

    Equal-mass particles; the 8x density contrast comes from lattice
    spacing (d vs 2d).  Returns (particles, box_x, width).
    """
    lx = 2.0
    w = width_cells * d

    def lattice(x_lo, x_hi, spacing):
        nx = int(round((x_hi - x_lo) / spacing))
        ny = int(round(w / spacing))
        xs = x_lo + (np.arange(nx) + 0.5) * spacing
        ys = (np.arange(ny) + 0.5) * spacing
        g = np.meshgrid(xs, ys, ys, indexing="ij")
        return np.stack([c.ravel() for c in g], axis=-1)

    dense = lattice(0.5, 1.5, d)
    sparse1 = lattice(0.0, 0.5, 2 * d)
    sparse2 = lattice(1.5, 2.0, 2 * d)
    pos = np.vstack([dense, sparse1, sparse2])

    mass_per = SOD_LEFT.rho * d**3  # so the dense lattice has rho = 1
    n = len(pos)
    in_dense = (pos[:, 0] >= 0.5) & (pos[:, 0] < 1.5)

    # pressure-consistent initialization: the kernel-interpolated density
    # overshoots at the contact, so set u from the solver's *own* density
    # estimate to make the initial pressure field exactly the target step
    # (the standard SPH shock-tube setup; removes the startup blip)
    from repro.core.sph import crksph_derivatives, get_kernel
    from repro.tree import neighbor_pairs

    eta = (3.0 * 40 / (4.0 * np.pi)) ** (1.0 / 3.0)
    h = np.where(in_dense, eta * d, eta * 2 * d)
    box = np.array([lx, w, w])
    mass = np.full(n, mass_per)
    pi, pj = neighbor_pairs(pos, h, box=box)
    der = crksph_derivatives(
        pos, np.zeros((n, 3)), mass, np.ones(n), h, pi, pj,
        get_kernel("wendland_c4"), eos=IdealGasEOS(gamma=GAMMA), box=box,
    )
    p_target = np.where(in_dense, SOD_LEFT.p, SOD_RIGHT.p)
    u = p_target / ((GAMMA - 1.0) * der.rho)

    parts = Particles(
        pos=pos,
        vel=np.zeros((n, 3)),
        mass=mass,
        species=np.full(n, int(Species.GAS), dtype=np.int8),
        u=u,
    )
    return parts, lx, w


@pytest.mark.slow
def test_sod_shock_tube_matches_exact():
    t_end = 0.15
    parts, lx, w = build_sod_tube()
    cfg = SimulationConfig(
        box=(lx, w, w),  # anisotropic periodic tube
        pm_grid=8,
        a_init=0.0,
        a_final=t_end,
        n_pm_steps=15,
        gravity=False,
        hydro=True,
        static=True,
        max_rung=4,
        n_neighbors=40,
        cfl=0.12,
    )
    sim = Simulation(cfg, parts)
    sim.eos = IdealGasEOS(gamma=GAMMA)
    sim.run()

    p = sim.particles
    # sample a window around the right-hand discontinuity (at x = 1.5) and
    # map to shock-tube coordinates: xi = x - 1.5, left state = dense side
    sel = (p.pos[:, 0] > 1.05) & (p.pos[:, 0] < 1.95)
    xi = p.pos[sel, 0] - 1.5
    rho_exact, v_exact, p_exact = sample_solution(xi, t_end, SOD_LEFT, SOD_RIGHT,
                                                  gamma=GAMMA)
    eos = IdealGasEOS(gamma=GAMMA)
    rho_sim = p.rho[sel]
    p_sim = eos.pressure(rho_sim, p.u[sel])
    v_sim = p.vel[sel, 0]

    # SPH at ~24 particles per unit length smears discontinuities over
    # several kernel widths and carries residual contact noise; tolerances
    # reflect this resolution (they tighten with particle count)
    l1_rho = np.mean(np.abs(rho_sim - rho_exact)) / SOD_LEFT.rho
    l1_p = np.mean(np.abs(p_sim - p_exact)) / SOD_LEFT.p
    l1_v = np.mean(np.abs(v_sim - v_exact))
    assert l1_rho < 0.15, f"density L1 error {l1_rho:.3f}"
    assert l1_p < 0.12, f"pressure L1 error {l1_p:.3f}"
    assert l1_v < 0.35, f"velocity L1 error {l1_v:.3f}"

    # structural checks: shock propagated right, rarefaction left
    assert v_sim.max() > 0.6  # post-shock flow toward +x
    # contact/shock plateau density between the two initial states
    mid = (xi > 0.05) & (xi < 0.2)
    if mid.any():
        assert 0.2 < rho_sim[mid].mean() < 0.6
