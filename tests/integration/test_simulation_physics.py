"""Integration tests of the full simulation driver against analytic physics."""

import numpy as np
import pytest

from repro.cosmology import PLANCK18, zeldovich_ics
from repro.core.particles import Particles, Species, make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig


def uniform_gas(n_per_dim, box, u0, jitter=0.0, seed=0):
    rng = np.random.default_rng(seed)
    spacing = box / n_per_dim
    coords = (np.arange(n_per_dim) + 0.5) * spacing
    gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
    pos = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)
    if jitter:
        pos = np.mod(pos + rng.uniform(-jitter, jitter, pos.shape) * spacing, box)
    n = len(pos)
    return Particles(
        pos=pos,
        vel=np.zeros((n, 3)),
        mass=np.full(n, 1.0e9),
        species=np.full(n, int(Species.GAS), dtype=np.int8),
        u=np.full(n, u0),
    )


class TestAdiabaticExpansion:
    def test_uniform_gas_cools_as_a_minus_2(self):
        """Hubble expansion of uniform gas: u ~ a^-2 for gamma = 5/3."""
        box = 50.0
        parts = uniform_gas(6, box, u0=100.0)
        cfg = SimulationConfig(
            box=box,
            pm_grid=8,
            a_init=0.5,
            a_final=0.7,
            n_pm_steps=8,
            cosmo=PLANCK18,
            gravity=False,
            hydro=True,
            max_rung=0,
        )
        sim = Simulation(cfg, parts)
        sim.run()
        expected = 100.0 * (0.5 / 0.7) ** 2
        u_final = sim.particles.u[sim.particles.gas]
        np.testing.assert_allclose(u_final.mean(), expected, rtol=0.02)
        # uniform gas stays uniform (no spurious forces)
        assert u_final.std() / u_final.mean() < 0.02


class TestStaticUniformStability:
    def test_static_uniform_gas_stays_put(self):
        """Newtonian mode, uniform gas, no gravity: nothing moves."""
        box = 10.0
        parts = uniform_gas(5, box, u0=50.0)
        cfg = SimulationConfig(
            box=box,
            pm_grid=8,
            a_init=0.0,
            a_final=1.0,
            n_pm_steps=4,
            gravity=False,
            static=True,
            max_rung=0,
        )
        sim = Simulation(cfg, parts)
        sim.run(2)
        v = sim.particles.vel
        cs = np.sqrt(5.0 / 3.0 * 2.0 / 3.0 * 50.0)
        assert np.abs(v).max() < 1e-3 * cs


class TestLinearGrowth:
    @pytest.mark.slow
    def test_power_spectrum_grows_as_d_squared(self):
        """Gravity-only: the amplitude of linear modes grows by D(a2)/D(a1)."""
        from repro.analysis.power import measure_power_spectrum

        box, n = 100.0, 12
        a0, a1 = 0.15, 0.25
        ics = zeldovich_ics(n, box, PLANCK18, a_init=a0, seed=3)
        parts = Particles(
            pos=ics.positions,
            vel=ics.velocities,
            mass=np.full(n**3, ics.particle_mass),
            species=np.zeros(n**3, dtype=np.int8),
        )
        cfg = SimulationConfig(
            box=box,
            pm_grid=24,
            a_init=a0,
            a_final=a1,
            n_pm_steps=10,
            cosmo=PLANCK18,
            hydro=False,
            gravity=True,
            max_rung=1,
        )
        sim = Simulation(cfg, parts)

        k_lo, k_hi = 2 * np.pi / box * 1.2, 2 * np.pi / box * 3.0
        k0, p0 = measure_power_spectrum(
            sim.particles.pos, sim.particles.mass, box, n_grid=24
        )
        sim.run()
        k1, p1 = measure_power_spectrum(
            sim.particles.pos, sim.particles.mass, box, n_grid=24
        )
        sel = (k0 > k_lo) & (k0 < k_hi) & (p0 > 0)
        growth = np.sqrt(np.nanmean(p1[sel] / p0[sel]))
        expected = PLANCK18.growth_factor(a1) / PLANCK18.growth_factor(a0)
        assert growth == pytest.approx(expected, rel=0.1)


class TestSubgridIntegration:
    def test_full_physics_run_completes_and_conserves_mass(self):
        box = 20.0
        ics = zeldovich_ics(6, box, PLANCK18, a_init=0.25, seed=9)
        parts = make_gas_dm_pair(
            ics.positions,
            ics.velocities,
            ics.particle_mass,
            PLANCK18.omega_b,
            PLANCK18.omega_m,
            u_init=20.0,
            box=box,
        )
        m0 = parts.total_mass()
        cfg = SimulationConfig(
            box=box,
            pm_grid=12,
            a_init=0.25,
            a_final=0.35,
            n_pm_steps=2,
            cosmo=PLANCK18,
            subgrid=True,
            max_rung=2,
        )
        sim = Simulation(cfg, parts)
        records = sim.run()
        assert len(records) == 2
        p = sim.particles
        assert p.total_mass() == pytest.approx(m0, rel=1e-12)
        assert np.all(np.isfinite(p.pos))
        assert np.all(np.isfinite(p.vel))
        assert np.all(p.u[p.gas] >= 0)
        assert np.all(p.pos >= 0) and np.all(p.pos < box)

    def test_timers_cover_all_components(self):
        box = 15.0
        parts = uniform_gas(4, box, 10.0, jitter=0.3)
        cfg = SimulationConfig(
            box=box, pm_grid=8, a_init=0.3, a_final=0.4, n_pm_steps=2,
            gravity=True, hydro=True, max_rung=1,
        )
        sim = Simulation(cfg, parts)
        sim.insitu_hooks.append(lambda s, r: None)
        sim.io_hooks.append(lambda s, r: None)
        rec = sim.pm_step()
        for key in ("tree_build", "long_range", "short_range", "analysis", "io"):
            assert key in rec.timers
        assert rec.timers["short_range"] > 0
        assert sum(sim.timing_fractions().values()) == pytest.approx(1.0)
