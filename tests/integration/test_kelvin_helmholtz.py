"""Kelvin-Helmholtz instability: shear layers must roll up, not damp.

CRKSPH's signature result (Frontiere et al. 2017) is capturing fluid
instabilities that standard SPH suppresses; the paper cites "accurately
modeling shocks and fluid instabilities" as a design goal.  A quasi-2D
shear flow with a velocity perturbation must amplify the transverse mode
(the linear KH growth phase) rather than damp it.
"""

import numpy as np
import pytest

from repro.core.particles import Particles, Species
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.sph.eos import IdealGasEOS

GAMMA = 5.0 / 3.0


def build_shear_layer(n=24, thickness=4):
    """Periodic quasi-2D box: central band streaming +x, outer bands -x,
    equal density/pressure, seeded with a small vy perturbation."""
    lx = ly = 1.0
    lz = thickness / n
    d = 1.0 / n
    coords = (np.arange(n) + 0.5) * d
    zc = (np.arange(thickness) + 0.5) * d
    gx, gy, gz = np.meshgrid(coords, coords, zc, indexing="ij")
    pos = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=-1)
    npart = len(pos)

    # smoothed shear profile (McNally et al. 2012): a sharp velocity
    # discontinuity is ill-posed for particle methods, so ramp vx over a
    # few particle spacings at each interface
    v_shear = 1.0
    delta = 1.5 * d
    y = pos[:, 1]
    ramp = 1.0 / (1.0 + np.exp(-(y - 0.25) / delta)) - 1.0 / (
        1.0 + np.exp(-(y - 0.75) / delta)
    )
    vel = np.zeros((npart, 3))
    vel[:, 0] = -v_shear / 2 + v_shear * ramp
    # seed the instability: single-mode vy perturbation at the interfaces
    pert = 0.05 * v_shear
    vel[:, 1] = pert * np.sin(4 * np.pi * pos[:, 0]) * (
        np.exp(-((pos[:, 1] - 0.25) ** 2) / (2 * 0.02))
        + np.exp(-((pos[:, 1] - 0.75) ** 2) / (2 * 0.02))
    )

    mass = np.full(npart, d**3)  # rho = 1
    p0 = 2.5  # pressure >> ram pressure: near-incompressible regime
    u = np.full(npart, p0 / ((GAMMA - 1.0) * 1.0))
    return Particles(
        pos=pos, vel=vel, mass=mass,
        species=np.full(npart, int(Species.GAS), dtype=np.int8), u=u,
    ), (lx, ly, lz)


def mode_amplitude(particles, k_mode=4):
    """Amplitude of the seeded vy mode along x (McNally-style diagnostic)."""
    x = particles.pos[:, 0]
    vy = particles.vel[:, 1]
    s = np.abs(np.mean(vy * np.sin(2 * np.pi * k_mode / 2 * x)))
    c = np.abs(np.mean(vy * np.cos(2 * np.pi * k_mode / 2 * x)))
    return float(np.hypot(s, c))


@pytest.mark.slow
def test_kh_mode_grows():
    parts, dims = build_shear_layer()
    t_end = 0.3  # a fraction of the KH growth time at these parameters
    cfg = SimulationConfig(
        box=dims, pm_grid=8, a_init=0.0, a_final=t_end, n_pm_steps=6,
        gravity=False, hydro=True, static=True, max_rung=4,
        n_neighbors=24, cfl=0.15, fixed_h=False,
    )
    sim = Simulation(cfg, parts)
    sim.eos = IdealGasEOS(gamma=GAMMA)

    amp0 = mode_amplitude(sim.particles)
    vy0 = np.abs(sim.particles.vel[:, 1]).mean()
    sim.run()
    amp1 = mode_amplitude(sim.particles)
    vy1 = np.abs(sim.particles.vel[:, 1]).mean()

    assert np.all(np.isfinite(sim.particles.vel))
    # the instability converts shear into transverse motion: at this
    # resolution the growth is broadband rather than a clean single mode
    # (the coherent linear phase needs far more particles), so the
    # transverse kinetic energy is the robust diagnostic — it must grow
    # severalfold, the hallmark separating an unstable shear layer from an
    # over-viscous damped one
    assert vy1 > 3.0 * vy0, f"transverse motion {vy0:.4f} -> {vy1:.4f}"
    # and the seeded mode must not be viscously damped away
    assert amp1 > 0.7 * amp0, f"seeded mode {amp0:.4f} -> {amp1:.4f}" 
