"""Active-set subcycling: kick-split FFT counts, active/full equivalence,
mid-step rung promotion, and SubcycleStats bookkeeping."""

import numpy as np
import pytest

from repro.cosmology import PLANCK18, zeldovich_ics
from repro.core.particles import make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig


def _mixed_setup(max_rung=4, active_set=True, n_pm_steps=2, seed=9):
    """Deep-rung mixed DM+gas problem (clustered Zel'dovich ICs)."""
    box = 20.0
    ics = zeldovich_ics(6, box, PLANCK18, a_init=0.25, seed=seed)
    parts = make_gas_dm_pair(
        ics.positions, ics.velocities, ics.particle_mass,
        PLANCK18.omega_b, PLANCK18.omega_m, u_init=20.0, box=box,
    )
    cfg = SimulationConfig(
        box=box, pm_grid=12, a_init=0.25, a_final=0.35,
        n_pm_steps=n_pm_steps, cosmo=PLANCK18, max_rung=max_rung,
        active_set=active_set,
    )
    return Simulation(cfg, parts)


class TestKickSplitFFTCount:
    def test_one_fft_per_pm_step_steady_state(self):
        """The long-range PM solve runs once per step boundary: the closing
        solve of step k is reused as the opening of step k+1, so a run of
        n steps costs n+1 FFT evaluations instead of (2^depth + 1) * n."""
        sim = _mixed_setup(max_rung=3, n_pm_steps=3)
        records = sim.run()
        assert sim.pm.n_evaluations == len(records) + 1
        # first step pays opening + closing; every later step only closing
        assert records[0].n_fft == 2
        for rec in records[1:]:
            assert rec.n_fft == 1
        for rec in records:
            assert rec.n_fft <= 2
            assert rec.subcycle.n_fft == rec.n_fft

    def test_fft_count_independent_of_depth(self):
        shallow = _mixed_setup(max_rung=0, n_pm_steps=2)
        deep = _mixed_setup(max_rung=4, n_pm_steps=2)
        shallow.run()
        deep.run()
        assert deep.history[1].deepest_rung > shallow.history[1].deepest_rung
        assert deep.pm.n_evaluations == shallow.pm.n_evaluations == 3


class TestActiveEqualsFull:
    def test_active_matches_full_to_roundoff(self):
        """Active-set evaluation must reproduce the full-evaluation
        trajectories on a deep-rung mixed DM+gas problem: inactive rows are
        never read before their next refresh, and the active pair
        reductions stream the same rows in the same order."""
        sa = _mixed_setup(active_set=True)
        sf = _mixed_setup(active_set=False)
        ra = sa.run()
        sf.run()
        assert max(r.subcycle.deepest_rung for r in ra) >= 3
        np.testing.assert_allclose(sa.particles.pos, sf.particles.pos,
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(sa.particles.vel, sf.particles.vel,
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(sa.particles.u, sf.particles.u,
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(sa.particles.rho, sf.particles.rho,
                                   rtol=1e-12, atol=1e-12)

    def test_active_streams_fewer_pairs(self):
        sa = _mixed_setup(active_set=True)
        sf = _mixed_setup(active_set=False)
        ra = sa.run()
        rf = sf.run()
        assert sum(r.subcycle.n_pairs for r in ra) < \
            sum(r.subcycle.n_pairs for r in rf)


class TestRungPromotion:
    def test_mid_step_promotion_deepens_rung(self):
        """A particle whose fresh timestep criterion stiffens at its own
        substep boundary is promoted to a deeper rung immediately."""
        sim = _mixed_setup(max_rung=2)
        n = len(sim.particles)
        calls = {"n": 0}

        def stub(dp_da, vsig, da):
            calls["n"] += 1
            r = np.zeros(n, dtype=np.int16)
            # opening assignment puts particle 0 on rung 1 (depth becomes
            # 2 via rung_margin); every later call — the promotion checks
            # at substep boundaries — demands rung 2 for it
            r[0] = 1 if calls["n"] == 1 else 2
            return r

        sim._assign_rungs = stub
        rec = sim.pm_step()
        assert rec.deepest_rung == 2  # margin depth hosted the promotion
        assert calls["n"] > 1  # the promotion branch actually ran
        assert sim.particles.rung[0] == 2

    def test_no_promotion_when_criteria_stable(self):
        sim = _mixed_setup(max_rung=2)
        n = len(sim.particles)

        def stub(dp_da, vsig, da):
            r = np.zeros(n, dtype=np.int16)
            r[0] = 1
            return r

        sim._assign_rungs = stub
        sim.pm_step()
        assert sim.particles.rung[0] == 1


class TestSubcycleStatsRecorded:
    def test_records_carry_subcycle_stats(self):
        sim = _mixed_setup(max_rung=4)
        records = sim.run()
        for rec in records:
            st = rec.subcycle
            assert st is not None
            assert st.n_particles == rec.n_particles
            assert st.n_substeps == rec.n_substeps
            assert st.n_force_evaluations == st.n_substeps + 1
            assert 0.0 < st.mean_active_fraction <= 1.0
        # deep rungs on a clustered problem: most substeps touch a subset
        deep = [r.subcycle for r in records if r.subcycle.deepest_rung >= 3]
        assert deep and all(st.mean_active_fraction < 1.0 for st in deep)

    def test_mean_active_fraction_is_one_without_rungs(self):
        sim = _mixed_setup(max_rung=0)
        records = sim.run()
        for rec in records:
            assert rec.subcycle.deepest_rung == 0
            assert rec.subcycle.mean_active_fraction == pytest.approx(1.0)
