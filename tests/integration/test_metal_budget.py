"""Metal-budget conservation through the full subgrid pipeline.

The invariant: metals only enter the simulation through explicit yield
injections (SN feedback); star formation merely moves existing metals
between phases.  Total metal mass must therefore equal the injected
budget at all times.
"""

import numpy as np
import pytest

from repro.core.particles import make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig
from repro.cosmology import PLANCK18, zeldovich_ics


@pytest.mark.slow
def test_metals_only_from_yields():
    box = 12.0  # small box -> dense -> star formation actually triggers
    ics = zeldovich_ics(6, box, PLANCK18, a_init=0.2, seed=77)
    parts = make_gas_dm_pair(
        ics.positions, ics.velocities, ics.particle_mass,
        PLANCK18.omega_b, PLANCK18.omega_m, u_init=5.0, box=box,
    )
    assert parts.total_metal_mass() == 0.0

    cfg = SimulationConfig(
        box=box, pm_grid=12, a_init=0.2, a_final=0.8, n_pm_steps=6,
        cosmo=PLANCK18, subgrid=True, max_rung=4, n_neighbors=24,
    )
    sim = Simulation(cfg, parts)
    # make star formation easy to trigger at this toy resolution: toy
    # densities never reach the production thresholds, so loosen them and
    # raise the efficiency to get a statistically certain number of events
    sim.star_formation.overdensity_min = 5.0
    sim.star_formation.n_h_threshold = 0.0
    sim.star_formation.t_max = 1.0e7
    sim.star_formation.efficiency = 0.5
    sim.supernova.delay_myr = 1.0  # prompt SNe

    n_sn_total = 0
    for rec in [sim.pm_step() for _ in range(6)]:
        n_sn_total += rec.n_sn_events

    p = sim.particles
    total_mass = p.total_mass()
    assert total_mass == pytest.approx(
        ics.particle_mass * len(ics.positions), rel=1e-12
    )

    stars = np.nonzero(p.stars)[0]
    metal_mass = p.total_metal_mass()
    if n_sn_total > 0:
        # every fired SN injected yield * m_star metals into the gas
        fired = sim.sn_fired & np.isin(
            np.arange(len(p)), np.nonzero(p.stars | p.gas)[0]
        )
        injected = sim.supernova.metal_yield * p.mass[sim.sn_fired].sum()
        assert metal_mass == pytest.approx(injected, rel=1e-6)
        assert metal_mass > 0
    else:
        # no SN fired (stochastic miss): metals must remain exactly zero
        assert metal_mass == 0.0

    # stars and SNe actually exercised the pipeline at these settings?
    # (informational rather than strict: stochastic at toy resolution)
    print(f"stars={len(stars)} sn_events={n_sn_total} "
          f"metal_mass={metal_mass:.3e}")


@pytest.mark.slow
def test_extended_enrichment_channels_activate():
    """With extended_enrichment on, aged stellar populations return SNIa
    iron and AGB metals to the gas (heating included)."""
    from repro.core.particles import Particles, Species

    box = 12.0
    rng = np.random.default_rng(3)
    n_gas = 120
    pos_gas = rng.uniform(0, box, (n_gas, 3))
    # one massive old star particle in the middle
    pos = np.vstack([pos_gas, [[6.0, 6.0, 6.0]]])
    species = np.concatenate(
        [np.full(n_gas, int(Species.GAS), dtype=np.int8),
         np.array([int(Species.STAR)], dtype=np.int8)]
    )
    parts = Particles(
        pos=pos,
        vel=np.zeros((n_gas + 1, 3)),
        mass=np.full(n_gas + 1, 1.0e9),
        species=species,
        u=np.concatenate([np.full(n_gas, 50.0), [0.0]]),
    )
    cfg = SimulationConfig(
        box=box, pm_grid=8, a_init=0.5, a_final=0.6, n_pm_steps=2,
        cosmo=PLANCK18, subgrid=True, extended_enrichment=True,
        gravity=False, max_rung=2, n_neighbors=16,
    )
    sim = Simulation(cfg, parts)
    sim.birth_a[-1] = 0.1  # star born long ago: SNIa + AGB windows active
    sim.sn_fired[-1] = True  # prompt channel already exhausted
    u_before = parts.u[parts.gas].copy()
    sim.run()
    p = sim.particles
    # delayed channels deposited metals into the gas
    assert p.total_metal_mass() > 0
    assert np.all(p.metallicity[p.gas] >= 0)
    assert np.all(np.isfinite(p.u))
