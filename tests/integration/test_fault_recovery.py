"""End-to-end fault tolerance: crash, restore from checkpoint, continue.

The reason Frontier-E checkpointed every PM step (Section IV-B4): any
interruption loses at most one step.  These tests exercise the real
recovery path — checkpoint files on disk, a simulated crash, a restart —
and verify the resumed run is bit-compatible with an uninterrupted one.
"""

import numpy as np
import pytest

from repro.core.particles import Particles
from repro.core.simulation import Simulation, SimulationConfig
from repro.cosmology import PLANCK18, zeldovich_ics
from repro.iosim import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)


def build_sim(particles, seed=5):
    cfg = SimulationConfig(
        box=30.0, pm_grid=12, a_init=0.25, a_final=0.45, n_pm_steps=4,
        cosmo=PLANCK18, hydro=False, gravity=True, max_rung=1, seed=seed,
    )
    return Simulation(cfg, particles)


@pytest.fixture(scope="module")
def ic_particles():
    ics = zeldovich_ics(6, 30.0, PLANCK18, a_init=0.25, seed=31)
    n = len(ics.positions)
    return Particles(
        pos=ics.positions, vel=ics.velocities,
        mass=np.full(n, ics.particle_mass),
        species=np.zeros(n, dtype=np.int8),
    )


class TestCrashRecovery:
    def test_resume_equals_uninterrupted(self, ic_particles, tmp_path):
        """Run with per-step checkpoints, 'crash' after step 2, restore,
        finish: the final state matches the never-interrupted run."""
        ckpt_dir = tmp_path

        # reference: uninterrupted
        ref = build_sim(ic_particles.copy())
        ref.run(4)
        ref_pos = ref.particles.pos.copy()

        # run 1 checkpoints every step, then "crashes"
        sim = build_sim(ic_particles.copy())

        def checkpointer(s, record):
            write_checkpoint(
                str(ckpt_dir / f"ckpt_{record.step:03d}.gio"),
                s.particles, a=record.a, step=record.step + 1,
            )

        sim.io_hooks.append(checkpointer)
        sim.run(2)
        del sim  # crash

        # recovery: find the latest valid checkpoint and resume
        candidates = sorted(ckpt_dir.glob("ckpt_*.gio"))
        assert len(candidates) == 2
        particles, meta = read_checkpoint(str(candidates[-1]))
        resumed = build_sim(particles)
        resumed.a = meta["a"]
        resumed.step_index = meta["step"]
        resumed.run(2)

        np.testing.assert_allclose(resumed.particles.pos, ref_pos, atol=1e-9)
        assert resumed.step_index == 4

    def test_corrupted_checkpoint_falls_back_to_previous(
        self, ic_particles, tmp_path
    ):
        """A torn/corrupted latest checkpoint is detected by CRC and the
        previous one restores cleanly — why per-block CRCs matter."""
        sim = build_sim(ic_particles.copy())
        paths = []

        def checkpointer(s, record):
            path = str(tmp_path / f"ckpt_{record.step:03d}.gio")
            write_checkpoint(path, s.particles, a=record.a,
                             step=record.step + 1)
            paths.append(path)

        sim.io_hooks.append(checkpointer)
        sim.run(3)

        # corrupt the newest file (bit flip in the data region)
        raw = bytearray(open(paths[-1], "rb").read())
        raw[-100] ^= 0xFF
        open(paths[-1], "wb").write(bytes(raw))

        with pytest.raises(CheckpointError):
            read_checkpoint(paths[-1])
        particles, meta = read_checkpoint(paths[-2])  # falls back
        assert meta["step"] == 2
        assert len(particles) == len(ic_particles)

    def test_recovery_loses_at_most_one_step(self, ic_particles, tmp_path):
        """Work-loss bound of per-step checkpointing."""
        sim = build_sim(ic_particles.copy())
        steps_checkpointed = []

        def checkpointer(s, record):
            write_checkpoint(
                str(tmp_path / f"c{record.step}.gio"), s.particles,
                a=record.a, step=record.step + 1,
            )
            steps_checkpointed.append(record.step)

        sim.io_hooks.append(checkpointer)
        sim.run(3)
        # crash happens *during* step 3 -> last durable state is step 2
        _, meta = read_checkpoint(str(tmp_path / "c2.gio"))
        lost_steps = 3 - (meta["step"] - 1)
        assert lost_steps <= 1
