"""FLRW background tests against known LCDM values."""

import numpy as np
import pytest

from repro.cosmology import PLANCK18, Cosmology


class TestExpansion:
    def test_e_of_a_today_is_one(self):
        assert PLANCK18.e_of_a(1.0) == pytest.approx(1.0, rel=1e-10)

    def test_flatness(self):
        c = PLANCK18
        assert c.omega_m + c.omega_r + c.omega_lambda == pytest.approx(1.0)

    def test_matter_dominates_early(self):
        # at a=0.01 (z=99) matter term dominates over lambda
        c = PLANCK18
        assert c.omega_m_of_a(0.01) > 0.99 * (
            1.0 - c.omega_r / 0.01 / (c.omega_m + c.omega_r / 0.01)
        )

    def test_hubble_today(self):
        assert PLANCK18.hubble(1.0) == pytest.approx(67.66, rel=1e-3)

    def test_eds_limit(self):
        """Einstein-de Sitter: E(a) = a^-1.5 exactly."""
        eds = Cosmology(omega_m=1.0, omega_b=0.05, omega_r=0.0)
        a = np.array([0.1, 0.5, 1.0])
        np.testing.assert_allclose(eds.e_of_a(a), a**-1.5, rtol=1e-12)


class TestTime:
    def test_age_of_universe(self):
        """Planck18 age ~ 13.8 Gyr."""
        assert PLANCK18.age(1.0) == pytest.approx(13.8, rel=0.02)

    def test_age_monotonic(self):
        ages = PLANCK18.age(np.array([0.1, 0.5, 1.0]))
        assert np.all(np.diff(ages) > 0)

    def test_eds_age(self):
        """EdS: t(a) = (2/3) a^1.5 / H0."""
        eds = Cosmology(omega_m=1.0, omega_b=0.05, omega_r=0.0, h=0.7)
        t1 = eds.age(1.0)
        # 2/(3 H0) in Gyr: H0 = 70 km/s/Mpc
        from repro.constants import GYR_S, H100_S

        expected = 2.0 / (3.0 * 0.7 * H100_S) / GYR_S
        assert t1 == pytest.approx(expected, rel=1e-4)

    def test_lookback_time_zero_at_z0(self):
        assert PLANCK18.lookback_time(0.0) == pytest.approx(0.0, abs=1e-8)


class TestDistances:
    def test_comoving_distance_low_z_hubble_law(self):
        """D_C(z) -> (c/H0) z for small z (in Mpc/h units, c/H0=2997.9)."""
        z = 0.01
        d = PLANCK18.comoving_distance(z)
        assert d == pytest.approx(2997.92458 * z, rel=0.01)

    def test_comoving_distance_monotonic(self):
        d = PLANCK18.comoving_distance(np.array([0.5, 1.0, 2.0]))
        assert np.all(np.diff(d) > 0)


class TestGrowth:
    def test_normalized_today(self):
        assert PLANCK18.growth_factor(1.0) == pytest.approx(1.0, rel=1e-10)

    def test_eds_growth_is_a(self):
        """EdS growth factor D(a) = a exactly."""
        eds = Cosmology(omega_m=1.0, omega_b=0.05, omega_r=0.0)
        a = np.array([0.1, 0.3, 0.7])
        np.testing.assert_allclose(eds.growth_factor(a), a, rtol=1e-5)

    def test_lcdm_growth_suppressed_late(self):
        """LCDM growth lags EdS at late times: D(a) < a D(1)/1 for a<1... i.e.
        D(0.5)/0.5 > D(1)/1 is false; normalized D(0.5) > 0.5."""
        d_half = PLANCK18.growth_factor(0.5)
        assert 0.5 < d_half < 0.7

    def test_growth_rate_eds_is_one(self):
        eds = Cosmology(omega_m=1.0, omega_b=0.05, omega_r=0.0)
        assert eds.growth_rate(0.5) == pytest.approx(1.0, rel=1e-3)

    def test_growth_rate_lcdm_today(self):
        """f(1) ~ Omega_m^0.55 ~ 0.52 for Planck18."""
        f = PLANCK18.growth_rate(1.0)
        assert f == pytest.approx(PLANCK18.omega_m**0.55, rel=0.02)


class TestConversions:
    def test_a_z_roundtrip(self):
        z = np.array([0.0, 0.5, 9.0, 99.0])
        np.testing.assert_allclose(Cosmology.z_of_a(Cosmology.a_of_z(z)), z)

    def test_rho_mean(self):
        assert PLANCK18.rho_mean0 == pytest.approx(
            PLANCK18.omega_m * 2.775e11, rel=1e-3
        )
