"""Linear power spectrum and initial-conditions tests."""

import numpy as np
import pytest

from repro.cosmology import (
    PLANCK18,
    LinearPower,
    eisenstein_hu_nowiggle,
    gaussian_field,
    zeldovich_ics,
)


@pytest.fixture(scope="module")
def power():
    return LinearPower(PLANCK18)


class TestTransferFunction:
    def test_large_scale_limit(self):
        """T(k) -> 1 as k -> 0."""
        t = eisenstein_hu_nowiggle(np.array([1e-5]), PLANCK18)
        assert t[0] == pytest.approx(1.0, abs=1e-3)

    def test_monotone_decreasing(self):
        k = np.logspace(-4, 2, 200)
        t = eisenstein_hu_nowiggle(k, PLANCK18)
        assert np.all(np.diff(t) < 0)

    def test_small_scale_suppression(self):
        t = eisenstein_hu_nowiggle(np.array([10.0]), PLANCK18)
        assert t[0] < 1e-3


class TestLinearPower:
    def test_sigma8_normalization(self, power):
        assert power.sigma8_at(1.0) == pytest.approx(PLANCK18.sigma8, rel=1e-3)

    def test_growth_scaling(self, power):
        """P(k, a) = D^2(a) P(k, 1)."""
        k = np.array([0.1, 1.0])
        d = PLANCK18.growth_factor(0.5)
        np.testing.assert_allclose(
            power(k, 0.5), power(k, 1.0) * d**2, rtol=1e-10
        )

    def test_power_positive(self, power):
        k = np.logspace(-3, 1.5, 50)
        assert np.all(power(k) > 0)

    def test_peak_location(self, power):
        """P(k) peaks near k_eq ~ 0.01-0.02 h/Mpc."""
        k = np.logspace(-3, 0, 400)
        pk = power(k)
        kpeak = k[np.argmax(pk)]
        assert 0.005 < kpeak < 0.05


class TestGaussianField:
    def test_zero_mean(self, power):
        delta = gaussian_field(32, 200.0, power, a=1.0, seed=1)
        assert abs(delta.mean()) < 1e-10

    def test_variance_scales_with_growth(self, power):
        d1 = gaussian_field(16, 500.0, power, a=1.0, seed=2)
        d2 = gaussian_field(16, 500.0, power, a=0.5, seed=2)
        growth = PLANCK18.growth_factor(0.5)
        assert d2.std() / d1.std() == pytest.approx(growth, rel=1e-6)

    def test_measured_power_matches_input(self, power):
        """Bin |delta_k|^2 and compare with P(k)."""
        n, box = 32, 400.0
        delta = gaussian_field(n, box, power, a=1.0, seed=3)
        dk = np.fft.rfftn(delta)
        k1 = np.fft.fftfreq(n, d=1.0 / n) * 2 * np.pi / box
        kz = np.fft.rfftfreq(n, d=1.0 / n) * 2 * np.pi / box
        kmag = np.sqrt(
            k1[:, None, None] ** 2 + k1[None, :, None] ** 2 + kz[None, None, :] ** 2
        )
        pk_est = np.abs(dk) ** 2 * box**3 / n**6
        # average within a k shell
        shell = (kmag > 0.1) & (kmag < 0.2)
        measured = pk_est[shell].mean()
        expected = power(kmag[shell]).mean()
        assert measured == pytest.approx(expected, rel=0.25)  # cosmic variance


class TestZeldovichICs:
    def test_particle_count_and_mass(self):
        ics = zeldovich_ics(8, 100.0, PLANCK18, a_init=0.02, seed=0)
        assert ics.positions.shape == (512, 3)
        total = ics.particle_mass * 512
        assert total == pytest.approx(PLANCK18.rho_mean0 * 100.0**3, rel=1e-10)

    def test_positions_in_box(self):
        ics = zeldovich_ics(8, 100.0, PLANCK18, a_init=0.02, seed=1)
        assert np.all(ics.positions >= 0)
        assert np.all(ics.positions < 100.0)

    def test_displacements_small_at_early_times(self):
        """Early ICs: displacements well below mean interparticle spacing."""
        box, n = 100.0, 8
        ics = zeldovich_ics(n, box, PLANCK18, a_init=0.01, seed=2)
        spacing = box / n
        coords = (np.arange(n) + 0.5) * spacing
        gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
        lattice = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)
        disp = ics.positions - lattice
        disp -= box * np.round(disp / box)
        assert np.abs(disp).max() < spacing

    def test_velocity_displacement_relation(self):
        """Zel'dovich: v = a H f psi, so |v| / |psi| is constant."""
        box, n, a = 200.0, 8, 0.02
        ics = zeldovich_ics(n, box, PLANCK18, a_init=a, seed=3)
        spacing = box / n
        coords = (np.arange(n) + 0.5) * spacing
        gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
        lattice = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)
        disp = ics.positions - lattice
        disp -= box * np.round(disp / box)
        expected_ratio = a * PLANCK18.hubble(a) * PLANCK18.growth_rate(a)
        ratio = ics.velocities / disp
        np.testing.assert_allclose(ratio, expected_ratio, rtol=1e-8)

    def test_2lpt_close_to_zeldovich_early(self):
        za = zeldovich_ics(8, 100.0, PLANCK18, a_init=0.01, seed=4, order=1)
        lpt2 = zeldovich_ics(8, 100.0, PLANCK18, a_init=0.01, seed=4, order=2)
        d = za.positions - lpt2.positions
        d -= 100.0 * np.round(d / 100.0)
        # 2LPT correction is second order -> tiny at a=0.01
        assert np.abs(d).max() < 0.05 * (100.0 / 8)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            zeldovich_ics(4, 10.0, PLANCK18, 0.02, order=3)
