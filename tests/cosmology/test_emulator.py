"""Emulator tests: design, training, prediction accuracy."""

import numpy as np
import pytest

from repro.cosmology import (
    PLANCK18,
    LinearPower,
    latin_hypercube,
    train_power_emulator,
)


class TestLatinHypercube:
    def test_stratification(self):
        """Each 1/n stratum sampled exactly once per parameter."""
        design = latin_hypercube(
            16, {"a": (0.0, 1.0)}, rng=np.random.default_rng(0)
        )
        strata = np.floor(design["a"] * 16).astype(int)
        assert sorted(strata.tolist()) == list(range(16))

    def test_bounds_respected(self):
        design = latin_hypercube(
            20, {"sigma8": (0.7, 0.9), "omega_m": (0.25, 0.35)},
            rng=np.random.default_rng(1),
        )
        assert design["sigma8"].min() >= 0.7
        assert design["sigma8"].max() <= 0.9
        assert design["omega_m"].min() >= 0.25

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            latin_hypercube(0, {"a": (0, 1)})


class TestEmulator:
    @pytest.fixture(scope="class")
    def trained(self):
        rng = np.random.default_rng(2)
        design = latin_hypercube(
            24, {"sigma8": (0.7, 0.9), "omega_m": (0.26, 0.36)}, rng=rng
        )
        k = np.logspace(-2, 0, 12)
        return train_power_emulator(design, k, base_cosmo=PLANCK18), k

    def test_interpolation_accuracy(self, trained):
        """Held-out parameter points predicted to ~1% (quadratic surface
        over a smooth response)."""
        emu, k = trained
        import dataclasses

        rng = np.random.default_rng(3)
        for _ in range(5):
            s8 = rng.uniform(0.72, 0.88)
            om = rng.uniform(0.27, 0.35)
            pred = emu.predict(sigma8=s8, omega_m=om)
            truth = LinearPower(
                dataclasses.replace(PLANCK18, sigma8=s8, omega_m=om)
            )(k)
            np.testing.assert_allclose(pred, truth, rtol=0.02)

    def test_recovers_training_cosmology(self, trained):
        emu, k = trained
        pred = emu.predict(sigma8=PLANCK18.sigma8, omega_m=PLANCK18.omega_m)
        truth = LinearPower(PLANCK18)(k)
        np.testing.assert_allclose(pred, truth, rtol=0.02)

    def test_sigma8_scaling_direction(self, trained):
        """P(k) ~ sigma8^2: the emulator must capture the amplitude."""
        emu, k = trained
        lo = emu.predict(sigma8=0.72, omega_m=0.31)
        hi = emu.predict(sigma8=0.88, omega_m=0.31)
        ratio = hi / lo
        assert np.all(ratio > 1.2)
        assert np.median(ratio) == pytest.approx((0.88 / 0.72) ** 2, rel=0.05)

    def test_missing_parameter_rejected(self, trained):
        emu, _ = trained
        with pytest.raises(ValueError, match="missing"):
            emu.predict(sigma8=0.8)

    def test_underdetermined_design_rejected(self):
        design = latin_hypercube(
            3, {"sigma8": (0.7, 0.9), "omega_m": (0.26, 0.36)},
            rng=np.random.default_rng(4),
        )
        with pytest.raises(ValueError, match="design points"):
            train_power_emulator(design, np.logspace(-2, 0, 5))
