"""Cross-module property-based tests (hypothesis) on system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosim import read_blocks, write_blocks
from repro.parallel import DistributedFFT, World, scatter_slabs
from repro.tree import build_chaining_mesh, build_leaf_set


class TestShardProperty:
    @given(
        n_arrays=st.integers(1, 4),
        n_rows=st.integers(1, 50),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_block_roundtrip_any_shape(self, n_arrays, n_rows, seed,
                                       tmp_path_factory):
        tmp = tmp_path_factory.mktemp("blk")
        rng = np.random.default_rng(seed)
        arrays = {}
        for i in range(n_arrays):
            ndim = rng.integers(1, 4)
            shape = tuple(rng.integers(1, 6, ndim))
            dtype = rng.choice([np.float64, np.float32, np.int64, np.int8])
            arrays[f"a{i}"] = rng.integers(0, 100, (n_rows,) + tuple(shape[1:])).astype(dtype)
        path = str(tmp / "x.gio")
        write_blocks(path, arrays, {"seed": int(seed)})
        got, meta = read_blocks(path)
        assert meta["seed"] == seed
        for k, v in arrays.items():
            np.testing.assert_array_equal(got[k], v)
            assert got[k].dtype == v.dtype


class TestFFTProperty:
    @given(
        n=st.sampled_from([4, 6, 8, 9, 12]),
        n_ranks=st.integers(1, 4),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=15, deadline=None)
    def test_distributed_forward_matches_numpy(self, n, n_ranks, seed):
        if n < n_ranks:
            return
        rng = np.random.default_rng(seed)
        field = rng.normal(size=(n, n, n))
        slabs = scatter_slabs(field, n_ranks)

        def fn(comm):
            return DistributedFFT(comm, n).forward(slabs[comm.rank])

        world = World(n_ranks)
        spec = np.concatenate(world.run(fn), axis=1)
        np.testing.assert_allclose(spec, np.fft.fftn(field), atol=1e-9)


class TestTreeProperty:
    @given(
        n=st.integers(10, 400),
        max_leaf=st.sampled_from([1, 4, 16, 64]),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_leafset_partitions_particles(self, n, max_leaf, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 3.0, (n, 3))
        mesh = build_chaining_mesh(pos, 1.0, origin=0.0, extent=3.0,
                                   periodic=True)
        leaves = build_leaf_set(pos, mesh, max_leaf=max_leaf)
        assert leaves.leaf_count.sum() == n
        assert leaves.leaf_count.max() <= max_leaf
        np.testing.assert_array_equal(np.sort(leaves.order), np.arange(n))
        # AABBs contain their particles
        for leaf in range(leaves.n_leaves):
            idx = leaves.particles_in_leaf(leaf)
            assert np.all(pos[idx] >= leaves.aabb_min[leaf] - 1e-12)
            assert np.all(pos[idx] <= leaves.aabb_max[leaf] + 1e-12)


class TestConstantsConsistency:
    def test_g_cosmo_magnitude(self):
        """G in Mpc (km/s)^2 / Msun: the canonical 4.30e-9."""
        from repro.constants import G_COSMO

        assert G_COSMO == pytest.approx(4.30e-9, rel=1e-2)

    def test_rho_crit_magnitude(self):
        """rho_crit = 2.775e11 Msun h^2 / Mpc^3."""
        from repro.constants import RHO_CRIT_COSMO

        assert RHO_CRIT_COSMO == pytest.approx(2.775e11, rel=1e-3)

    def test_frontier_particle_count(self):
        from repro.constants import FRONTIER_E_PARTICLES

        assert FRONTIER_E_PARTICLES == pytest.approx(4.0e12, rel=1e-2)
