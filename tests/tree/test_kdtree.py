"""Coarse-leaf k-d tree and interaction-list tests."""

import numpy as np
import pytest

from repro.tree import (
    build_chaining_mesh,
    build_interaction_list,
    build_leaf_set,
    expand_to_particle_pairs,
    neighbor_pairs,
)


@pytest.fixture
def random_cloud():
    rng = np.random.default_rng(11)
    pos = rng.uniform(0, 4.0, (800, 3))
    mesh = build_chaining_mesh(pos, 1.0, origin=0.0, extent=4.0, periodic=True)
    return pos, mesh


class TestLeafSet:
    def test_every_particle_in_exactly_one_leaf(self, random_cloud):
        pos, mesh = random_cloud
        leaves = build_leaf_set(pos, mesh, max_leaf=32)
        assert leaves.leaf_count.sum() == len(pos)
        assert np.all(leaves.particle_leaf >= 0)
        seen = np.sort(leaves.order)
        np.testing.assert_array_equal(seen, np.arange(len(pos)))

    def test_leaf_size_bounded(self, random_cloud):
        pos, mesh = random_cloud
        leaves = build_leaf_set(pos, mesh, max_leaf=32)
        assert leaves.leaf_count.max() <= 32
        assert leaves.leaf_count.min() >= 1

    def test_leaves_respect_bins(self, random_cloud):
        """A leaf's particles all come from the leaf's CM bin."""
        pos, mesh = random_cloud
        leaves = build_leaf_set(pos, mesh, max_leaf=16)
        for leaf in range(leaves.n_leaves):
            idx = leaves.particles_in_leaf(leaf)
            assert np.all(mesh.bin_index[idx] == leaves.leaf_bin[leaf])

    def test_aabbs_contain_particles(self, random_cloud):
        pos, mesh = random_cloud
        leaves = build_leaf_set(pos, mesh, max_leaf=32)
        for leaf in range(leaves.n_leaves):
            idx = leaves.particles_in_leaf(leaf)
            assert np.all(pos[idx] >= leaves.aabb_min[leaf] - 1e-12)
            assert np.all(pos[idx] <= leaves.aabb_max[leaf] + 1e-12)

    def test_growable_boxes_only_grow(self, random_cloud):
        pos, mesh = random_cloud
        leaves = build_leaf_set(pos, mesh, max_leaf=32)
        old_min = leaves.aabb_min.copy()
        old_max = leaves.aabb_max.copy()
        drifted = pos + np.random.default_rng(1).normal(0, 0.05, pos.shape)
        leaves.recompute_boxes(drifted, grow=True)
        assert np.all(leaves.aabb_min <= old_min + 1e-15)
        assert np.all(leaves.aabb_max >= old_max - 1e-15)
        # drifted particles still covered
        for leaf in range(leaves.n_leaves):
            idx = leaves.particles_in_leaf(leaf)
            assert np.all(drifted[idx] >= leaves.aabb_min[leaf] - 1e-12)
            assert np.all(drifted[idx] <= leaves.aabb_max[leaf] + 1e-12)

    def test_rebuild_mode_shrinks(self, random_cloud):
        pos, mesh = random_cloud
        leaves = build_leaf_set(pos, mesh, max_leaf=32)
        leaves.aabb_min -= 10.0
        leaves.aabb_max += 10.0
        leaves.recompute_boxes(pos, grow=False)
        for leaf in range(leaves.n_leaves):
            idx = leaves.particles_in_leaf(leaf)
            np.testing.assert_allclose(leaves.aabb_min[leaf], pos[idx].min(axis=0))

    def test_max_leaf_validation(self, random_cloud):
        pos, mesh = random_cloud
        with pytest.raises(ValueError):
            build_leaf_set(pos, mesh, max_leaf=0)


class TestInteractionLists:
    def test_tree_pairs_match_cell_list_pairs(self, random_cloud):
        """Leaf-pair expansion reproduces the reference neighbor-pair list."""
        pos, mesh = random_cloud
        h = np.full(len(pos), 0.5)
        leaves = build_leaf_set(pos, mesh, max_leaf=32)
        ilist = build_interaction_list(leaves, mesh, pad=0.5, box=4.0)
        pi_t, pj_t = expand_to_particle_pairs(ilist, leaves, pos, h, box=4.0)
        pi_r, pj_r = neighbor_pairs(pos, h, box=4.0)
        assert set(zip(pi_t.tolist(), pj_t.tolist())) == set(
            zip(pi_r.tolist(), pj_r.tolist())
        )

    def test_self_leaf_pairs_present(self, random_cloud):
        pos, mesh = random_cloud
        leaves = build_leaf_set(pos, mesh, max_leaf=32)
        ilist = build_interaction_list(leaves, mesh, pad=0.3, box=4.0)
        self_pairs = np.sum(ilist.leaf_i == ilist.leaf_j)
        assert self_pairs == leaves.n_leaves

    def test_active_leaf_filtering(self, random_cloud):
        """Only active i-side leaves appear; j side is unrestricted."""
        pos, mesh = random_cloud
        leaves = build_leaf_set(pos, mesh, max_leaf=32)
        active = np.zeros(leaves.n_leaves, dtype=bool)
        active[:3] = True
        ilist = build_interaction_list(
            leaves, mesh, pad=0.3, box=4.0, active_leaves=active
        )
        assert set(np.unique(ilist.leaf_i)).issubset({0, 1, 2})
        full = build_interaction_list(leaves, mesh, pad=0.3, box=4.0)
        assert len(ilist) < len(full)

    def test_interaction_list_symmetric_when_all_active(self, random_cloud):
        pos, mesh = random_cloud
        leaves = build_leaf_set(pos, mesh, max_leaf=32)
        ilist = build_interaction_list(leaves, mesh, pad=0.3, box=4.0)
        pairs = set(zip(ilist.leaf_i.tolist(), ilist.leaf_j.tolist()))
        assert all((j, i) in pairs for (i, j) in pairs)

    def test_empty_leafset(self):
        pos = np.empty((0, 3))
        mesh = build_chaining_mesh(
            np.array([[0.5, 0.5, 0.5]]), 1.0, origin=0.0, extent=1.0
        )
        leaves = build_leaf_set(pos, mesh_with_no_particles(mesh), max_leaf=4)
        ilist = build_interaction_list(leaves, mesh, pad=0.1, box=1.0)
        assert len(ilist) == 0


def mesh_with_no_particles(mesh):
    """Clone a mesh structure with zeroed occupancy."""
    import dataclasses

    return dataclasses.replace(
        mesh,
        order=np.empty(0, dtype=np.int64),
        bin_count=np.zeros_like(mesh.bin_count),
        bin_start=np.zeros_like(mesh.bin_start),
        bin_index=np.empty(0, dtype=np.int64),
    )
