"""Verlet pair-list cache: correctness of reuse, filtering, and rebuilds."""

import numpy as np
import pytest

from repro.core.sph import crksph_derivatives, get_kernel
from repro.tree import PairCache, neighbor_pairs


def _pair_set(pi, pj):
    return set(zip(pi.tolist(), pj.tolist()))


def _random_setup(n=200, box=8.0, seed=5):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, box, size=(n, 3))
    h = rng.uniform(0.6, 1.0, size=n)
    return rng, pos, h, box


class TestCachedListMatchesFresh:
    def test_first_query_equals_fresh_list(self):
        _, pos, h, box = _random_setup()
        cache = PairCache(skin=0.3, box=box)
        pi, pj = cache.get(pos, h)
        fi, fj = neighbor_pairs(pos, h, box=box)
        assert _pair_set(pi, pj) == _pair_set(fi, fj)
        assert cache.n_builds == 1

    def test_query_after_drift_within_skin_no_rebuild(self):
        rng, pos, h, box = _random_setup()
        cache = PairCache(skin=0.3, box=box)
        cache.get(pos, h)
        # drift each particle well inside its skin * h / 2 allowance
        drift = rng.normal(size=pos.shape)
        drift *= (0.25 * 0.3 * h / np.linalg.norm(drift, axis=1))[:, None]
        moved = np.mod(pos + drift, box)
        pi, pj = cache.get(moved, h)
        assert cache.n_builds == 1  # reused
        fi, fj = neighbor_pairs(moved, h, box=box)
        assert _pair_set(pi, pj) == _pair_set(fi, fj)

    def test_open_boundary_domain(self):
        rng = np.random.default_rng(9)
        pos = rng.uniform(0, 5, size=(100, 3))
        h = np.full(100, 0.8)
        cache = PairCache(skin=0.25, box=None)
        pi, pj = cache.get(pos + 0.0, h)
        fi, fj = neighbor_pairs(pos, h, box=None)
        assert _pair_set(pi, pj) == _pair_set(fi, fj)


class TestRebuildTriggers:
    def test_drift_beyond_skin_rebuilds(self):
        rng, pos, h, box = _random_setup()
        cache = PairCache(skin=0.2, box=box)
        cache.get(pos, h)
        kick = np.zeros_like(pos)
        kick[7] = 1.1 * 0.5 * 0.2 * h[7]  # one particle past skin/2
        pi, pj = cache.get(np.mod(pos + kick, box), h)
        assert cache.n_builds == 2
        assert cache.n_rebuilds_drift == 1
        fi, fj = neighbor_pairs(np.mod(pos + kick, box), h, box=box)
        assert _pair_set(pi, pj) == _pair_set(fi, fj)

    def test_support_growth_rebuilds(self):
        _, pos, h, box = _random_setup()
        cache = PairCache(skin=0.25, box=box)
        cache.get(pos, h)
        grown = h.copy()
        grown[3] *= 1.3
        pi, pj = cache.get(pos, grown)
        assert cache.n_rebuilds_h == 1
        fi, fj = neighbor_pairs(pos, grown, box=box)
        assert _pair_set(pi, pj) == _pair_set(fi, fj)

    def test_support_shrink_reuses(self):
        _, pos, h, box = _random_setup()
        cache = PairCache(skin=0.25, box=box)
        cache.get(pos, h)
        pi, pj = cache.get(pos, 0.8 * h)
        assert cache.n_builds == 1
        fi, fj = neighbor_pairs(pos, 0.8 * h, box=box)
        assert _pair_set(pi, pj) == _pair_set(fi, fj)

    def test_changed_ids_rebuild(self):
        _, pos, h, box = _random_setup()
        cache = PairCache(skin=0.25, box=box)
        ids = np.arange(len(pos))
        cache.get(pos, h, ids=ids)
        other = ids.copy()
        other[[0, 1]] = other[[1, 0]]
        cache.get(pos, h, ids=other)
        assert cache.n_rebuilds_ids == 1

    def test_changed_count_rebuilds(self):
        _, pos, h, box = _random_setup()
        cache = PairCache(skin=0.25, box=box)
        cache.get(pos, h)
        cache.get(pos[:-5], h[:-5])
        assert cache.n_builds == 2

    def test_invalidate_forces_rebuild(self):
        _, pos, h, box = _random_setup()
        cache = PairCache(skin=0.25, box=box)
        cache.get(pos, h)
        cache.invalidate()
        cache.get(pos, h)
        assert cache.n_builds == 2

    def test_negative_skin_rejected(self):
        with pytest.raises(ValueError):
            PairCache(skin=-0.1)


def _equilibrated_gas(n_side=6, box=8.0, seed=12):
    """Jittered lattice with supports relaxed to ~40 neighbors — the
    well-conditioned neighborhood the CRK moment inversion expects."""
    from repro.core.sph import compute_number_density
    from repro.core.sph.hydro import update_smoothing_lengths

    rng = np.random.default_rng(seed)
    g = (np.indices((n_side,) * 3).reshape(3, -1).T + 0.5) * (box / n_side)
    pos = np.mod(g + rng.normal(scale=0.05 * box / n_side, size=g.shape), box)
    kernel = get_kernel("wendland_c4")
    h = np.full(len(pos), 1.6 * box / n_side)
    for _ in range(3):
        pi, pj = neighbor_pairs(pos, h, box=box)
        _, vol = compute_number_density(pos, h, pi, pj, kernel, box=box)
        h = update_smoothing_lengths(vol, n_target=40, h_old=h)
    return rng, pos, h, kernel, box


class TestForcesThroughCache:
    def test_forces_match_fresh_after_drift_within_skin(self):
        """Cached-list CRKSPH forces equal fresh-list forces after a drift
        that stays inside the skin (pair sets identical; only summation
        order may differ)."""
        rng, pos, h, kernel, box = _equilibrated_gas()
        vel = rng.normal(scale=2.0, size=pos.shape)
        mass = np.full(len(pos), 1.0)
        u = np.full(len(pos), 15.0)

        cache = PairCache(skin=0.3, box=box)
        cache.get(pos, h)
        drift = rng.normal(size=pos.shape)
        drift *= (0.3 * 0.3 * h / np.linalg.norm(drift, axis=1))[:, None]
        moved = np.mod(pos + drift, box)

        pi_c, pj_c = cache.get(moved, h)
        assert cache.n_builds == 1
        d_cached = crksph_derivatives(
            moved, vel, mass, u, h, pi_c, pj_c, kernel, box=box
        )
        fi, fj = neighbor_pairs(moved, h, box=box)
        d_fresh = crksph_derivatives(
            moved, vel, mass, u, h, fi, fj, kernel, box=box
        )
        atol_a = 1e-10 * float(np.abs(d_fresh.accel).max())
        np.testing.assert_allclose(d_cached.accel, d_fresh.accel,
                                   rtol=1e-9, atol=atol_a)
        atol_u = 1e-10 * float(np.abs(d_fresh.du_dt).max())
        np.testing.assert_allclose(d_cached.du_dt, d_fresh.du_dt,
                                   rtol=1e-9, atol=atol_u)
        np.testing.assert_allclose(d_cached.max_signal_speed,
                                   d_fresh.max_signal_speed, rtol=1e-12)

    def test_conservation_through_cached_list(self):
        """Momentum/energy stay at round-off with a reused cached list —
        the filter preserves the symmetric pair-list contract."""
        rng, pos, h, box = _random_setup(n=180, seed=21)
        kernel = get_kernel("wendland_c4")
        vel = rng.normal(scale=2.0, size=pos.shape)
        mass = rng.uniform(0.5, 1.5, size=len(pos))
        u = np.full(len(pos), 10.0)

        cache = PairCache(skin=0.25, box=box)
        cache.get(pos, h)
        drift = rng.normal(scale=0.01 * h.min(), size=pos.shape)
        moved = np.mod(pos + drift, box)
        pi, pj = cache.get(moved, h)
        assert cache.n_builds == 1

        d = crksph_derivatives(moved, vel, mass, u, h, pi, pj, kernel, box=box)
        mom_rate = np.sum(mass[:, None] * d.accel, axis=0)
        e_rate = float(np.sum(mass * (np.einsum("na,na->n", vel, d.accel)
                                      + d.du_dt)))
        scale = float(np.sum(np.abs(mass[:, None] * d.accel)))
        assert np.all(np.abs(mom_rate) < 1e-11 * max(scale, 1.0))
        e_scale = float(np.sum(np.abs(mass * d.du_dt)))
        assert abs(e_rate) < 1e-10 * max(e_scale, 1.0)


class TestActiveSubsetQueries:
    """Active-sink pair queries: CSR row gathers must equal masked full
    queries, and the tiered slices must cover the CRK dependency closures."""

    def _sinks(self, n, k=40, seed=11):
        rng = np.random.default_rng(seed)
        return np.sort(rng.choice(n, size=k, replace=False))

    def test_get_for_sinks_equals_masked_get(self):
        _, pos, h, box = _random_setup()
        cache = PairCache(skin=0.3, box=box)
        pi, pj = cache.get(pos, h)
        sinks = self._sinks(len(pos))
        api, apj = cache.get_for_sinks(pos, h, sinks)
        m = np.isin(pi, sinks)
        # exact row-for-row (and order-for-order: CSR) agreement
        np.testing.assert_array_equal(api, pi[m])
        np.testing.assert_array_equal(apj, pj[m])

    def test_get_for_sinks_after_drift_reuses_cache(self):
        rng, pos, h, box = _random_setup(seed=7)
        cache = PairCache(skin=0.3, box=box)
        cache.get(pos, h)
        drift = rng.normal(size=pos.shape)
        drift *= (0.25 * 0.3 * h / np.linalg.norm(drift, axis=1))[:, None]
        moved = np.mod(pos + drift, box)
        sinks = self._sinks(len(pos), seed=3)
        api, apj = cache.get_for_sinks(moved, h, sinks)
        assert cache.n_builds == 1  # reused across the drift
        fi, fj = neighbor_pairs(moved, h, box=box)
        m = np.isin(fi, sinks)
        assert _pair_set(api, apj) == _pair_set(fi[m], fj[m])

    def test_active_slices_tiers_and_pairs(self):
        _, pos, h, box = _random_setup()
        cache = PairCache(skin=0.3, box=box)
        pi, pj = cache.get(pos, h)
        sinks = self._sinks(len(pos), k=25, seed=5)
        sl = cache.active_slices(pos, h, sinks)

        # tier1 = sinks plus their gather sources
        t1 = np.unique(np.concatenate([sinks, pj[np.isin(pi, sinks)]]))
        np.testing.assert_array_equal(sl.tier1, t1)
        # tier2 = tier1 plus its gather sources
        t2 = np.unique(np.concatenate([t1, pj[np.isin(pi, t1)]]))
        np.testing.assert_array_equal(sl.tier2, t2)
        assert np.all(np.isin(sinks, sl.tier1))
        assert np.all(np.isin(sl.tier1, sl.tier2))

        # pairs1 are exactly the full-list rows whose sink is in tier1,
        # in CSR order; mask0 flags the sink-owned rows among them
        m1 = np.isin(pi, t1)
        np.testing.assert_array_equal(sl.pi1, pi[m1])
        np.testing.assert_array_equal(sl.pj1, pj[m1])
        np.testing.assert_array_equal(sl.mask0, np.isin(sl.pi1, sinks))
        m2 = np.isin(pi, t2)
        np.testing.assert_array_equal(sl.pi2, pi[m2])
        assert sl.n_pairs == len(sl.pi1) + len(sl.pi2) + int(sl.mask0.sum())

    def test_active_hydro_rows_match_full(self):
        """crksph_derivatives_active reproduces the full evaluation on the
        sink rows exactly (same pair order, same reductions)."""
        from repro.core.sph import crksph_derivatives_active
        from repro.core.sph.eos import IdealGasEOS
        from repro.core.sph.viscosity import MonaghanViscosity

        rng, pos, h, box = _random_setup(n=160, seed=13)
        kernel = get_kernel("wendland_c4")
        vel = rng.normal(scale=2.0, size=pos.shape)
        mass = rng.uniform(0.5, 1.5, size=len(pos))
        u = rng.uniform(5.0, 20.0, size=len(pos))
        eos = IdealGasEOS()
        visc = MonaghanViscosity()

        cache = PairCache(skin=0.25, box=box)
        pi, pj = cache.get(pos, h)
        full = crksph_derivatives(pos, vel, mass, u, h, pi, pj, kernel,
                                  eos=eos, viscosity=visc, box=box)
        sinks = self._sinks(len(pos), k=30, seed=2)
        sl = cache.active_slices(pos, h, sinks)
        act = crksph_derivatives_active(pos, vel, mass, u, h, sl, kernel,
                                        eos=eos, viscosity=visc, box=box)
        np.testing.assert_array_equal(act.sinks, sinks)
        np.testing.assert_array_equal(act.accel, full.accel[sinks])
        np.testing.assert_array_equal(act.du_dt, full.du_dt[sinks])
        np.testing.assert_array_equal(act.max_signal_speed,
                                      full.max_signal_speed[sinks])
        np.testing.assert_array_equal(act.rho, full.rho[sl.tier1])

    def test_hop_closure_matches_bfs_over_superset(self):
        """hop_closure equals a breadth-first expansion over the cached
        (unfiltered) superset pair list."""
        _, pos, h, box = _random_setup()
        cache = PairCache(skin=0.3, box=box)
        cache.get(pos, h)
        spi, spj = cache._pi, cache._pj  # superset rows
        seeds = self._sinks(len(pos), k=12, seed=8)
        for hops in (0, 1, 2, 3):
            got = cache.hop_closure(pos, h, seeds, hops=hops)
            want = np.zeros(len(pos), dtype=bool)
            want[seeds] = True
            for _ in range(hops):
                want = want | np.isin(
                    np.arange(len(pos)),
                    spj[want[spi]],
                ) | want
            np.testing.assert_array_equal(got, want)

    def test_hop_closure_accepts_boolean_seeds(self):
        _, pos, h, box = _random_setup()
        cache = PairCache(skin=0.3, box=box)
        seeds_idx = self._sinks(len(pos), k=10, seed=4)
        seeds_mask = np.zeros(len(pos), dtype=bool)
        seeds_mask[seeds_idx] = True
        a = cache.hop_closure(pos, h, seeds_idx, hops=2)
        b = cache.hop_closure(pos, h, seeds_mask, hops=2)
        np.testing.assert_array_equal(a, b)

    def test_hop_closure_is_monotone_and_contains_seeds(self):
        _, pos, h, box = _random_setup()
        cache = PairCache(skin=0.3, box=box)
        seeds = self._sinks(len(pos), k=8, seed=6)
        prev = None
        for hops in range(4):
            cur = cache.hop_closure(pos, h, seeds, hops=hops)
            assert cur[seeds].all()
            if prev is not None:
                assert np.all(prev <= cur)  # closures only grow with hops
            prev = cur

    def test_hop_closure_empty_seeds(self):
        _, pos, h, box = _random_setup()
        cache = PairCache(skin=0.3, box=box)
        got = cache.hop_closure(
            pos, h, np.empty(0, dtype=np.intp), hops=3
        )
        assert not got.any()

    def test_short_range_sink_index_matches_full(self):
        from repro.core.gravity.short_range import short_range_accelerations

        rng, pos, h, box = _random_setup(n=150, seed=17)
        mass = rng.uniform(0.5, 1.5, size=len(pos))
        cache = PairCache(skin=0.25, box=box, include_self=False)
        cutoff = np.full(len(pos), 1.2)
        pi, pj = cache.get(pos, cutoff)
        full = short_range_accelerations(pos, mass, pi, pj, r_split=0.5,
                                         softening=0.02, box=box)
        sinks = self._sinks(len(pos), k=35, seed=9)
        api, apj = cache.get_for_sinks(pos, cutoff, sinks)
        compact = short_range_accelerations(
            pos, mass, api, apj, r_split=0.5, softening=0.02, box=box,
            sink_index=np.searchsorted(sinks, api), n_out=len(sinks),
        )
        np.testing.assert_array_equal(compact, full[sinks])
