"""Chaining mesh and neighbor-pair tests (vs brute force reference)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.chaining_mesh import build_chaining_mesh, neighbor_pairs


def brute_force_pairs(pos, h, box=None, include_self=True):
    n = len(pos)
    pi, pj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    pi, pj = pi.ravel(), pj.ravel()
    dx = pos[pi] - pos[pj]
    if box is not None:
        dx -= box * np.round(dx / box)
    r2 = np.einsum("pa,pa->p", dx, dx)
    rmax = np.maximum(h[pi], h[pj])
    keep = r2 < rmax**2
    if not include_self:
        keep &= pi != pj
    return set(zip(pi[keep].tolist(), pj[keep].tolist()))


class TestBuildMesh:
    def test_all_particles_binned(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 10, (500, 3))
        mesh = build_chaining_mesh(pos, 1.0, origin=0.0, extent=10.0)
        assert mesh.bin_count.sum() == 500
        # CSR round-trip covers every particle exactly once
        seen = np.concatenate(
            [mesh.particles_in_bin(b) for b in range(mesh.total_bins)
             if mesh.bin_count[b] > 0]
        )
        assert sorted(seen.tolist()) == list(range(500))

    def test_bin_widths_at_least_min_width(self):
        pos = np.random.default_rng(0).uniform(0, 7.3, (50, 3))
        mesh = build_chaining_mesh(pos, 1.1, origin=0.0, extent=7.3)
        assert np.all(mesh.widths >= 1.1 - 1e-12)

    def test_particles_mapped_to_containing_bin(self):
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 4, (200, 3))
        mesh = build_chaining_mesh(pos, 1.0, origin=0.0, extent=4.0)
        coords = mesh.bin_coords(mesh.bin_index)
        lo = mesh.origin + coords * mesh.widths
        hi = lo + mesh.widths
        assert np.all(pos >= lo - 1e-12)
        assert np.all(pos <= hi + 1e-12)

    def test_nonperiodic_autobounds(self):
        pos = np.random.default_rng(3).normal(0, 5, (100, 3))
        mesh = build_chaining_mesh(pos, 2.0)
        assert not mesh.periodic
        assert mesh.bin_count.sum() == 100

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_chaining_mesh(np.zeros((5, 2)), 1.0)
        with pytest.raises(ValueError):
            build_chaining_mesh(np.zeros((5, 3)), -1.0)

    def test_flat_index_wraps_when_periodic(self):
        pos = np.random.default_rng(4).uniform(0, 4, (50, 3))
        mesh = build_chaining_mesh(pos, 1.0, origin=0.0, extent=4.0, periodic=True)
        n = mesh.n_bins
        wrapped = mesh.flat_index(np.array([[-1, 0, 0]]))
        direct = mesh.flat_index(np.array([[n[0] - 1, 0, 0]]))
        assert wrapped[0] == direct[0]


class TestNeighborPairs:
    def test_matches_brute_force_periodic(self):
        rng = np.random.default_rng(5)
        pos = rng.uniform(0, 1, (120, 3))
        h = np.full(120, 0.22)
        pi, pj = neighbor_pairs(pos, h, box=1.0)
        assert set(zip(pi.tolist(), pj.tolist())) == brute_force_pairs(pos, h, box=1.0)

    def test_matches_brute_force_nonperiodic(self):
        rng = np.random.default_rng(6)
        pos = rng.uniform(0, 1, (100, 3))
        h = np.full(100, 0.15)
        pi, pj = neighbor_pairs(pos, h, box=None)
        assert set(zip(pi.tolist(), pj.tolist())) == brute_force_pairs(pos, h)

    def test_variable_h_symmetric(self):
        rng = np.random.default_rng(7)
        pos = rng.uniform(0, 1, (80, 3))
        h = rng.uniform(0.1, 0.3, 80)
        pi, pj = neighbor_pairs(pos, h, box=1.0)
        pairs = set(zip(pi.tolist(), pj.tolist()))
        assert pairs == brute_force_pairs(pos, h, box=1.0)
        # symmetry contract
        assert all((j, i) in pairs for i, j in pairs)

    def test_self_pairs_present_once(self):
        pos = np.random.default_rng(8).uniform(0, 1, (50, 3))
        h = np.full(50, 0.2)
        pi, pj = neighbor_pairs(pos, h, box=1.0)
        self_count = np.sum(pi == pj)
        assert self_count == 50

    def test_exclude_self(self):
        pos = np.random.default_rng(9).uniform(0, 1, (30, 3))
        h = np.full(30, 0.2)
        pi, pj = neighbor_pairs(pos, h, box=1.0, include_self=False)
        assert not np.any(pi == pj)

    def test_no_duplicate_pairs(self):
        pos = np.random.default_rng(10).uniform(0, 1, (60, 3))
        h = np.full(60, 0.45)  # large h -> few bins, wrap stress
        pi, pj = neighbor_pairs(pos, h, box=1.0)
        keys = pi * 60 + pj
        assert len(np.unique(keys)) == len(keys)

    def test_empty_input(self):
        pi, pj = neighbor_pairs(np.empty((0, 3)), np.empty(0), box=1.0)
        assert len(pi) == 0 and len(pj) == 0

    @given(
        n=st.integers(2, 60),
        hval=st.floats(0.05, 0.6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_brute_force(self, n, hval, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 1, (n, 3))
        h = np.full(n, hval)
        pi, pj = neighbor_pairs(pos, h, box=1.0)
        assert set(zip(pi.tolist(), pj.tolist())) == brute_force_pairs(
            pos, h, box=1.0
        )
