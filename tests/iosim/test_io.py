"""I/O substrate tests: NVMe/PFS models, multi-tier pipeline, faults."""

import numpy as np
import pytest

from repro.iosim import (
    DirectPFSWriter,
    MultiTierWriter,
    NVMeModel,
    PFSModel,
    expected_efficiency,
    simulate_run_with_faults,
    young_daly_interval,
)


class TestNVMe:
    def test_write_duration(self):
        nvme = NVMeModel(write_bw_gbps=4.0)
        # 0.02 TB = 20 GB at 4 GB/s -> 5 s
        assert nvme.write_seconds(0.02) == pytest.approx(5.0)

    def test_read_interference_slows_writes(self):
        nvme = NVMeModel()
        assert nvme.write_seconds(0.02, concurrent_read=True) > nvme.write_seconds(
            0.02
        )

    def test_capacity_enforced(self):
        nvme = NVMeModel(capacity_tb=1.0)
        nvme.store("a", 0.8)
        with pytest.raises(IOError, match="NVMe full"):
            nvme.store("b", 0.3)
        nvme.remove("a")
        nvme.store("b", 0.3)
        assert nvme.free_tb == pytest.approx(0.7)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NVMeModel().store("x", -1.0)


class TestPFS:
    def test_bandwidth_scales_then_saturates(self):
        pfs = PFSModel(seed=0)
        low = pfs.effective_write_tbps(10, sample_variability=False)
        mid = pfs.effective_write_tbps(1000, sample_variability=False)
        high = pfs.effective_write_tbps(int(pfs.saturation_clients()),
                                        sample_variability=False)
        assert low < mid <= high
        assert high == pytest.approx(pfs.peak_write_tbps, rel=0.01)

    def test_contention_beyond_saturation(self):
        pfs = PFSModel(seed=0)
        n_star = int(pfs.saturation_clients())
        over = pfs.effective_write_tbps(n_star * 8, sample_variability=False)
        assert over < pfs.peak_write_tbps

    def test_variability_within_paper_envelope(self):
        """At Frontier scale, sampled bandwidth spans ~0.75-3.7 TB/s."""
        pfs = PFSModel(seed=3)
        samples = np.array(
            [pfs.effective_write_tbps(9000) for _ in range(400)]
        )
        assert samples.min() > 0.05
        assert samples.max() <= pfs.peak_write_tbps
        assert 0.5 < np.median(samples) < 4.0

    def test_zero_writers(self):
        assert PFSModel().effective_write_tbps(0) == 0.0


class TestMultiTier:
    def make_writer(self, **kw):
        return MultiTierWriter(
            n_nodes=9000,
            nvme=NVMeModel(capacity_tb=3.5),
            pfs=PFSModel(seed=1),
            **kw,
        )

    def test_sync_time_much_shorter_than_bleed(self):
        """150 TB over 9000 nodes: tens of seconds locally (paper VI-B)."""
        w = self.make_writer()
        rec = w.checkpoint(0, data_tb=150.0, compute_seconds=600.0)
        assert rec.sync_seconds < 60.0
        assert rec.bleed_seconds > rec.sync_seconds

    def test_aggregate_nvme_bandwidth_matches_paper_scale(self):
        """9000 nodes x 4 GB/s = 36 TB/s aggregate local bandwidth."""
        w = self.make_writer()
        rec = w.checkpoint(0, data_tb=150.0, compute_seconds=600.0)
        assert rec.nvme_bw_tbps == pytest.approx(36.0, rel=0.01)

    def test_imbalance_halves_effective_bandwidth(self):
        w1 = self.make_writer()
        r1 = w1.checkpoint(0, 150.0, 600.0, imbalance=1.0)
        w2 = self.make_writer()
        r2 = w2.checkpoint(0, 150.0, 600.0, imbalance=2.0)
        assert r2.nvme_bw_tbps == pytest.approx(r1.nvme_bw_tbps / 2.0, rel=0.01)

    def test_no_stall_when_compute_hides_bleed(self):
        w = self.make_writer()
        for step in range(5):
            rec = w.checkpoint(step, 150.0, compute_seconds=3600.0)
            assert rec.stall_seconds == 0.0

    def test_stall_when_compute_too_short(self):
        w = self.make_writer()
        w.checkpoint(0, 170.0, compute_seconds=1.0)
        rec = w.checkpoint(1, 170.0, compute_seconds=1.0)
        assert rec.stall_seconds > 0.0

    def test_pruning_keeps_nvme_from_filling(self):
        w = self.make_writer(retention_steps=2)
        for step in range(60):
            w.checkpoint(step, 170.0, compute_seconds=1200.0)
        # shard ~18.9 GB/step; without pruning 60 steps ~ 1.1 TB; retention
        # keeps only 2 shards resident
        assert w.nvme.used_tb < 3 * (170.0 / 9000) * 1.01
        assert len(w.nvme.files) <= 2

    def test_effective_bandwidth_exceeds_pfs_peak(self):
        """The paper's headline: 5.45 TB/s effective > 4.6 TB/s Orion peak,
        because the blocking path is the NVMe write, not the PFS drain."""
        w = self.make_writer()
        for step in range(25):
            w.checkpoint(step, 165.0, compute_seconds=1100.0, imbalance=1.5)
        assert w.effective_bandwidth_tbps > w.pfs.peak_write_tbps

    def test_multitier_beats_direct_pfs(self):
        mt = self.make_writer()
        direct = DirectPFSWriter(n_nodes=9000, pfs=PFSModel(seed=1))
        for step in range(10):
            mt.checkpoint(step, 150.0, compute_seconds=1200.0)
            direct.checkpoint(step, 150.0, compute_seconds=1200.0)
        assert mt.total_io_seconds < 0.5 * direct.total_io_seconds

    def test_input_validation(self):
        w = self.make_writer()
        with pytest.raises(ValueError):
            w.checkpoint(0, -1.0, 10.0)
        with pytest.raises(ValueError):
            w.checkpoint(0, 1.0, 10.0, imbalance=0.5)


class TestFaults:
    def test_young_daly(self):
        assert young_daly_interval(0.01, 2.0) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            young_daly_interval(0.1, 0.0)

    def test_fault_free_run(self):
        stats = simulate_run_with_faults(
            total_work_hours=100.0,
            checkpoint_interval_hours=1.0,
            checkpoint_cost_hours=0.01,
            mtti_hours=1.0e9,
            rng=np.random.default_rng(0),
        )
        assert stats.n_interrupts == 0
        assert stats.wallclock_hours == pytest.approx(101.0)

    def test_interruptions_cost_time(self):
        stats = simulate_run_with_faults(
            total_work_hours=200.0,
            checkpoint_interval_hours=0.5,
            checkpoint_cost_hours=0.01,
            mtti_hours=4.0,
            rng=np.random.default_rng(1),
        )
        assert stats.n_interrupts > 20
        assert stats.lost_hours > 0
        assert stats.wallclock_hours > 200.0
        assert 0.5 < stats.efficiency < 1.0

    def test_frequent_checkpointing_beats_rare_under_short_mtti(self):
        """The paper's choice: with MTTI of a few hours, checkpoint every
        step (~20 min) rather than e.g. every 12 hours."""
        common = dict(
            total_work_hours=196.0,
            checkpoint_cost_hours=20.0 / 3600.0,  # ~20 s in hours
            mtti_hours=3.0,
        )
        frequent = simulate_run_with_faults(
            checkpoint_interval_hours=0.3,
            rng=np.random.default_rng(2),
            **common,
        )
        rare = simulate_run_with_faults(
            checkpoint_interval_hours=12.0,
            rng=np.random.default_rng(2),
            max_wallclock_hours=1.0e6,
            **common,
        )
        assert frequent.wallclock_hours < rare.wallclock_hours

    def test_analytic_efficiency_has_interior_optimum(self):
        taus = np.linspace(0.02, 5.0, 200)
        eff = [expected_efficiency(t, 0.01, 3.0) for t in taus]
        best = taus[int(np.argmax(eff))]
        yd = young_daly_interval(0.01, 3.0)
        assert best == pytest.approx(yd, rel=0.5)

    def test_impossible_run_raises(self):
        with pytest.raises(RuntimeError):
            simulate_run_with_faults(
                total_work_hours=100.0,
                checkpoint_interval_hours=50.0,
                checkpoint_cost_hours=1.0,
                mtti_hours=0.5,
                rng=np.random.default_rng(3),
                max_wallclock_hours=500.0,
            )

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            simulate_run_with_faults(1.0, 0.0, 0.1, 1.0)
