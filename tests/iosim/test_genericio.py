"""Distributed shard-set checkpoint tests."""

import numpy as np
import pytest

from repro.iosim import (
    CheckpointError,
    distributed_checkpoint,
    read_distributed,
    write_index,
    write_shard,
)
from repro.parallel import World


def make_shards(directory, n_ranks=4, n_per_rank=20, seed=0):
    rng = np.random.default_rng(seed)
    expected = {"pos": [], "ids": []}
    for r in range(n_ranks):
        pos = rng.uniform(0, 1, (n_per_rank, 3))
        ids = np.arange(r * n_per_rank, (r + 1) * n_per_rank)
        write_shard(str(directory), r, {"pos": pos, "ids": ids})
        expected["pos"].append(pos)
        expected["ids"].append(ids)
    write_index(str(directory), n_ranks, step=7, a=0.5)
    return {k: np.concatenate(v) for k, v in expected.items()}


class TestShardSet:
    def test_roundtrip(self, tmp_path):
        expected = make_shards(tmp_path)
        ds = read_distributed(str(tmp_path))
        np.testing.assert_array_equal(ds.arrays["pos"], expected["pos"])
        np.testing.assert_array_equal(ds.arrays["ids"], expected["ids"])
        assert ds.index["step"] == 7
        assert ds.n_ranks == 4

    def test_rank_slices(self, tmp_path):
        make_shards(tmp_path, n_ranks=3, n_per_rank=10)
        ds = read_distributed(str(tmp_path))
        for r in range(3):
            sl = ds.rank_slice(r)
            ids = ds.arrays["ids"][sl]
            np.testing.assert_array_equal(ids, np.arange(r * 10, (r + 1) * 10))

    def test_missing_shard_detected(self, tmp_path):
        make_shards(tmp_path)
        (tmp_path / "shard_00002.gio").unlink()
        with pytest.raises(CheckpointError, match="missing shard"):
            read_distributed(str(tmp_path))

    def test_missing_index_detected(self, tmp_path):
        make_shards(tmp_path)
        (tmp_path / "index.json").unlink()
        with pytest.raises(CheckpointError, match="no index"):
            read_distributed(str(tmp_path))

    def test_corrupted_shard_detected(self, tmp_path):
        make_shards(tmp_path)
        path = tmp_path / "shard_00001.gio"
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            read_distributed(str(tmp_path))

    def test_wrong_rank_claim_detected(self, tmp_path):
        make_shards(tmp_path, n_ranks=2)
        # shard 1 overwritten with a file claiming rank 0
        write_shard(str(tmp_path), 0, {"pos": np.zeros((2, 3)),
                                       "ids": np.arange(2)})
        import shutil

        shutil.copy(tmp_path / "shard_00000.gio", tmp_path / "shard_00001.gio")
        with pytest.raises(CheckpointError, match="claims rank"):
            read_distributed(str(tmp_path))


class TestSPMDCheckpoint:
    def test_all_ranks_write_and_reassemble(self, tmp_path):
        n_ranks = 4
        rng = np.random.default_rng(1)
        global_pos = rng.uniform(0, 1, (40, 3))

        def fn(comm):
            lo = comm.rank * 10
            return distributed_checkpoint(
                comm, str(tmp_path),
                {"pos": global_pos[lo : lo + 10],
                 "ids": np.arange(lo, lo + 10)},
                step=3, a=0.4,
            )

        World(n_ranks).run(fn)
        ds = read_distributed(str(tmp_path))
        np.testing.assert_array_equal(ds.arrays["pos"], global_pos)
        assert ds.index["n_ranks"] == n_ranks
