"""Real-thread async bleed tests (the paper's actual I/O mechanism)."""

import os
import time

import numpy as np
import pytest

from repro.iosim import AsyncBleeder, write_checkpoint
from repro.core.particles import Particles


def write_local(bleeder, name, nbytes=4096):
    path = os.path.join(bleeder.local_dir, name)
    with open(path, "wb") as f:
        f.write(os.urandom(nbytes))
    bleeder.submit(name)
    return path


class TestAsyncBleeder:
    def test_files_move_local_to_pfs(self, tmp_path):
        with AsyncBleeder(str(tmp_path / "nvme"), str(tmp_path / "pfs")) as b:
            for i in range(5):
                write_local(b, f"ckpt_{i}.bin")
            assert b.drain()
            for i in range(5):
                assert (tmp_path / "pfs" / f"ckpt_{i}.bin").exists()
                assert not (tmp_path / "nvme" / f"ckpt_{i}.bin").exists()
        assert b.stats.files_bled == 5
        assert b.stats.bytes_bled == 5 * 4096
        assert b.stats.errors == 0

    def test_submit_does_not_block_on_slow_pfs(self, tmp_path):
        """The whole point: a throttled PFS must not stall the producer."""
        b = AsyncBleeder(
            str(tmp_path / "nvme"), str(tmp_path / "pfs"),
            throttle_bps=64 * 1024,  # slow drain
        )
        t0 = time.perf_counter()
        for i in range(4):
            write_local(b, f"c{i}.bin", nbytes=32 * 1024)
        submit_time = time.perf_counter() - t0
        # writing+queueing 128 kB must be near-instant even though draining
        # it takes ~2 s at 64 kB/s
        assert submit_time < 0.5
        assert b.drain(timeout=30)
        b.close()
        assert b.stats.files_bled == 4

    def test_retention_prunes_old_checkpoints(self, tmp_path):
        with AsyncBleeder(
            str(tmp_path / "nvme"), str(tmp_path / "pfs"), retention=2
        ) as b:
            for i in range(6):
                write_local(b, f"step_{i}.bin")
                b.drain()
        pfs_files = sorted(os.listdir(tmp_path / "pfs"))
        assert pfs_files == ["step_4.bin", "step_5.bin"]
        assert b.stats.files_pruned == 4

    def test_no_torn_files_on_pfs(self, tmp_path):
        """Readers only ever see fully-renamed files (no .part visible
        after drain)."""
        with AsyncBleeder(str(tmp_path / "nvme"), str(tmp_path / "pfs"),
                          throttle_bps=256 * 1024) as b:
            write_local(b, "big.bin", nbytes=128 * 1024)
            b.drain(timeout=30)
        names = os.listdir(tmp_path / "pfs")
        assert names == ["big.bin"]
        assert os.path.getsize(tmp_path / "pfs" / "big.bin") == 128 * 1024

    def test_missing_file_counts_error_and_continues(self, tmp_path):
        with AsyncBleeder(str(tmp_path / "nvme"), str(tmp_path / "pfs")) as b:
            b.submit("does_not_exist.bin")
            write_local(b, "ok.bin")
            b.drain()
        assert b.stats.errors == 1
        assert b.stats.files_bled == 1

    def test_closed_bleeder_rejects_submissions(self, tmp_path):
        b = AsyncBleeder(str(tmp_path / "nvme"), str(tmp_path / "pfs"))
        b.close()
        with pytest.raises(RuntimeError):
            b.submit("late.bin")

    def test_end_to_end_with_real_checkpoints(self, tmp_path):
        """Simulation-style flow: write CRC'd checkpoints locally, bleed,
        then restore from the PFS copy."""
        from repro.iosim import read_checkpoint

        rng = np.random.default_rng(0)
        parts = Particles(
            pos=rng.uniform(0, 1, (30, 3)),
            vel=rng.normal(0, 1, (30, 3)),
            mass=np.ones(30),
            species=np.zeros(30, dtype=np.int8),
        )
        with AsyncBleeder(str(tmp_path / "nvme"), str(tmp_path / "pfs")) as b:
            for step in range(3):
                name = f"ckpt_{step}.gio"
                write_checkpoint(
                    os.path.join(b.local_dir, name), parts, a=0.1 * step,
                    step=step,
                )
                b.submit(name)
            b.drain()
        restored, meta = read_checkpoint(str(tmp_path / "pfs" / "ckpt_2.gio"))
        assert meta["step"] == 2
        np.testing.assert_array_equal(restored.pos, parts.pos)
