"""Checkpoint-manager tests: the full NVMe->bleed->PFS->restore loop."""

import os

import numpy as np
import pytest

from repro.core.particles import Particles
from repro.core.simulation import Simulation, SimulationConfig
from repro.cosmology import PLANCK18, zeldovich_ics
from repro.iosim import CheckpointError, CheckpointManager


def make_sim(seed=3):
    ics = zeldovich_ics(5, 25.0, PLANCK18, a_init=0.3, seed=seed)
    n = len(ics.positions)
    parts = Particles(
        pos=ics.positions, vel=ics.velocities,
        mass=np.full(n, ics.particle_mass),
        species=np.zeros(n, dtype=np.int8),
    )
    cfg = SimulationConfig(
        box=25.0, pm_grid=8, a_init=0.3, a_final=0.42, n_pm_steps=4,
        cosmo=PLANCK18, hydro=False, max_rung=1,
    )
    return Simulation(cfg, parts)


class TestManagerLoop:
    def test_per_step_checkpoints_reach_pfs(self, tmp_path):
        sim = make_sim()
        with CheckpointManager(str(tmp_path / "nvme"), str(tmp_path / "pfs"),
                               retention=10) as mgr:
            sim.io_hooks.append(mgr)
            sim.run(3)
        assert len(mgr.written) == 3
        pfs_files = sorted(os.listdir(tmp_path / "pfs"))
        assert pfs_files == ["ckpt_00000.gio", "ckpt_00001.gio",
                             "ckpt_00002.gio"]
        assert mgr.bleeder.stats.files_bled == 3
        # local tier drained
        assert os.listdir(tmp_path / "nvme") == []

    def test_cadence(self, tmp_path):
        sim = make_sim()
        with CheckpointManager(str(tmp_path / "n"), str(tmp_path / "p"),
                               every=2, retention=10) as mgr:
            sim.io_hooks.append(mgr)
            sim.run(4)
        assert [r.step for r in mgr.written] == [0, 2]

    def test_retention_window(self, tmp_path):
        sim = make_sim()
        with CheckpointManager(str(tmp_path / "n"), str(tmp_path / "p"),
                               retention=2) as mgr:
            sim.io_hooks.append(mgr)
            sim.run(4)
            mgr.bleeder.drain()
        pfs_files = sorted(os.listdir(tmp_path / "p"))
        assert pfs_files == ["ckpt_00002.gio", "ckpt_00003.gio"]

    def test_restore_latest_and_continue(self, tmp_path):
        ref = make_sim()
        ref.run(4)
        ref_pos = ref.particles.pos.copy()

        sim = make_sim()
        with CheckpointManager(str(tmp_path / "n"), str(tmp_path / "p"),
                               retention=5) as mgr:
            sim.io_hooks.append(mgr)
            sim.run(2)
        del sim  # crash

        particles, meta, name = CheckpointManager.restore_latest(
            str(tmp_path / "p")
        )
        assert name == "ckpt_00001.gio"
        resumed = make_sim()
        resumed.particles = particles
        resumed.birth_a = np.zeros(len(particles))
        resumed.sn_fired = np.zeros(len(particles), dtype=bool)
        resumed.bh_mass = np.zeros(len(particles))
        resumed.a = meta["a"]
        resumed.step_index = meta["step"]
        resumed.run(2)
        np.testing.assert_allclose(resumed.particles.pos, ref_pos, atol=1e-9)

    def test_restore_skips_corrupted_newest(self, tmp_path):
        sim = make_sim()
        with CheckpointManager(str(tmp_path / "n"), str(tmp_path / "p"),
                               retention=5) as mgr:
            sim.io_hooks.append(mgr)
            sim.run(3)
        newest = tmp_path / "p" / "ckpt_00002.gio"
        raw = bytearray(newest.read_bytes())
        raw[-50] ^= 0xFF
        newest.write_bytes(bytes(raw))
        _, meta, name = CheckpointManager.restore_latest(str(tmp_path / "p"))
        assert name == "ckpt_00001.gio"

    def test_restore_empty_dir_raises(self, tmp_path):
        os.makedirs(tmp_path / "empty")
        with pytest.raises(CheckpointError):
            CheckpointManager.restore_latest(str(tmp_path / "empty"))

    def test_invalid_cadence(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path / "a"), str(tmp_path / "b"),
                              every=0)
