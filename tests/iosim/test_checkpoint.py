"""Checkpoint format tests: round-trip identity, corruption detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.particles import Particles
from repro.iosim import (
    CheckpointError,
    read_blocks,
    read_checkpoint,
    write_blocks,
    write_checkpoint,
)


def random_particles(n=50, seed=0):
    rng = np.random.default_rng(seed)
    return Particles(
        pos=rng.uniform(0, 10, (n, 3)),
        vel=rng.normal(0, 100, (n, 3)),
        mass=rng.uniform(1, 2, n) * 1e9,
        species=rng.integers(0, 4, n).astype(np.int8),
        u=rng.uniform(0, 1e4, n),
        h=rng.uniform(0.1, 1.0, n),
        metallicity=rng.uniform(0, 0.02, n),
    )


class TestBlockFormat:
    def test_roundtrip_mixed_dtypes(self, tmp_path):
        path = str(tmp_path / "blocks.gio")
        arrays = {
            "f64": np.random.default_rng(0).normal(size=(7, 3)),
            "i64": np.arange(11, dtype=np.int64),
            "i8": np.array([1, 2, 3], dtype=np.int8),
            "f32": np.linspace(0, 1, 5, dtype=np.float32),
        }
        write_blocks(path, arrays, {"note": "hi"})
        got, meta = read_blocks(path)
        assert meta["note"] == "hi"
        for k, v in arrays.items():
            np.testing.assert_array_equal(got[k], v)
            assert got[k].dtype == v.dtype

    def test_crc_detects_corruption(self, tmp_path):
        path = str(tmp_path / "c.gio")
        write_blocks(path, {"x": np.arange(100, dtype=np.float64)}, {})
        raw = bytearray(open(path, "rb").read())
        raw[-9] ^= 0xFF  # flip a data byte
        open(path, "wb").write(bytes(raw))
        with pytest.raises(CheckpointError, match="CRC"):
            read_blocks(path)
        # validation can be skipped explicitly
        arrays, _ = read_blocks(path, validate=False)
        assert "x" in arrays

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "bad.gio")
        open(path, "wb").write(b"NOTMAGIC" + b"\0" * 64)
        with pytest.raises(CheckpointError, match="magic"):
            read_blocks(path)

    def test_truncated_file(self, tmp_path):
        path = str(tmp_path / "t.gio")
        write_blocks(path, {"x": np.arange(1000, dtype=np.float64)}, {})
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError):
            read_blocks(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "x.gio")
        write_blocks(path, {"a": np.zeros(3)}, {})
        assert not (tmp_path / "x.gio.tmp").exists()

    def test_long_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="too long"):
            write_blocks(str(tmp_path / "n.gio"), {"x" * 40: np.zeros(2)}, {})

    @given(
        n=st.integers(1, 200),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_roundtrip(self, n, seed, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("prop")
        rng = np.random.default_rng(seed)
        arr = rng.normal(size=(n, 3))
        path = str(tmp / "p.gio")
        write_blocks(path, {"arr": arr}, {"n": n})
        got, meta = read_blocks(path)
        np.testing.assert_array_equal(got["arr"], arr)
        assert meta["n"] == n


class TestParticleCheckpoint:
    def test_roundtrip_identity(self, tmp_path):
        path = str(tmp_path / "ckpt.gio")
        p = random_particles()
        write_checkpoint(path, p, a=0.42, step=17)
        q, meta = read_checkpoint(path)
        assert meta["a"] == 0.42
        assert meta["step"] == 17
        assert meta["n_particles"] == len(p)
        for f in ("pos", "vel", "mass", "u", "h", "metallicity", "rho"):
            np.testing.assert_array_equal(getattr(q, f), getattr(p, f))
        np.testing.assert_array_equal(q.species, p.species)
        np.testing.assert_array_equal(q.ids, p.ids)
        np.testing.assert_array_equal(q.rung, p.rung)

    def test_restart_continues_simulation(self, tmp_path):
        """Restarting from a checkpoint reproduces the uninterrupted run."""
        from repro.core.simulation import Simulation, SimulationConfig

        path = str(tmp_path / "restart.gio")
        cfg = SimulationConfig(
            box=20.0, pm_grid=8, a_init=0.3, a_final=0.5, n_pm_steps=4,
            gravity=True, hydro=False, max_rung=1, seed=7,
        )
        p0 = random_particles(n=64, seed=3)
        p0.species[:] = 0
        p0.pos[:] = np.mod(p0.pos, 20.0)

        # run 1: two steps, checkpoint, two more
        sim = Simulation(cfg, p0.copy())
        sim.run(2)
        write_checkpoint(path, sim.particles, a=sim.a, step=sim.step_index)
        sim.run(2)
        final_direct = sim.particles.pos.copy()

        # run 2: restore and finish
        q, meta = read_checkpoint(path)
        sim2 = Simulation(cfg, q)
        sim2.a = meta["a"]
        sim2.step_index = meta["step"]
        sim2.run(2)
        np.testing.assert_allclose(sim2.particles.pos, final_direct, atol=1e-10)

    def test_missing_block_detected(self, tmp_path):
        path = str(tmp_path / "m.gio")
        write_blocks(path, {"pos": np.zeros((3, 3))}, {})
        with pytest.raises(CheckpointError, match="missing"):
            read_checkpoint(path)
