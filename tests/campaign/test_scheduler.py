"""Admission control, priority lanes, and per-tenant accounting."""

import threading
import time

import pytest

from repro.campaign.jobs import SimJob
from repro.campaign.scheduler import (
    AdmissionError,
    CampaignEngine,
    JobQueue,
)
from repro.observe.derived import tenant_report


def tiny_job(**over) -> SimJob:
    """Smallest job that still runs a real step."""
    over.setdefault("n_per_dim", 3)
    over.setdefault("pm_grid", 8)
    over.setdefault("hydro", False)
    over.setdefault("max_rung", 0)
    return SimJob(**over)


class TestJobQueue:
    def test_priority_lanes_fifo_within_lane(self):
        q = JobQueue(max_depth=16)
        for item, pri in (("b0", 1), ("b1", 1), ("i0", 0), ("b2", 1),
                          ("i1", 0)):
            q.put(item, priority=pri)
        q.close()
        drained = [q.get() for _ in range(5)]
        assert drained == ["i0", "i1", "b0", "b1", "b2"]
        assert q.get() is None  # closed and empty

    def test_reject_policy_sheds_when_full(self):
        q = JobQueue(max_depth=2, policy="reject")
        assert q.put("a") and q.put("b")
        assert not q.put("c")
        assert len(q) == 2

    def test_block_policy_waits_for_space(self):
        q = JobQueue(max_depth=1, policy="block")
        q.put("a")
        admitted = []

        def producer():
            admitted.append(q.put("b"))

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.05)
        assert not admitted  # producer is blocked on the full queue
        assert q.get() == "a"
        t.join(1.0)
        assert admitted == [True]

    def test_block_policy_timeout(self):
        q = JobQueue(max_depth=1, policy="block")
        q.put("a")
        assert q.put("b", timeout=0.01) is False

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(policy="drop-newest")


class TestEngineAccounting:
    def test_per_tenant_rows(self):
        jobs = [tiny_job(name=f"a{i}", tenant="alice", seed=i)
                for i in range(2)]
        jobs += [tiny_job(name="b0", tenant="bob", seed=7)]
        engine = CampaignEngine(n_workers=2)
        report = engine.run(jobs)
        assert report.n_completed == 3 and report.n_failed == 0
        rows = {r.tenant: r for r in report.tenants}
        assert rows["alice"].jobs_completed == 2
        assert rows["bob"].jobs_completed == 1
        assert rows["alice"].wall_seconds > 0
        assert rows["alice"].sim_gyr == pytest.approx(
            2 * rows["bob"].sim_gyr, rel=1e-9
        )
        # the report rows are derived straight from the registry
        from_registry = {r.tenant: r.jobs_completed
                         for r in tenant_report(engine.registry)}
        assert from_registry == {"alice": 2, "bob": 1}

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_failed_job_is_counted_not_fatal(self):
        bad = tiny_job(name="bad", pm_grid=8, n_per_dim=3, box=-5.0)
        good = tiny_job(name="good")
        report = CampaignEngine(n_workers=1).run([bad, good])
        assert report.n_completed == 1
        assert report.n_failed == 1
        failed = [r for r in report.results if r.status == "failed"]
        assert failed[0].job.name == "bad" and failed[0].error

    def test_reject_policy_counts_shed_jobs(self):
        engine = CampaignEngine(n_workers=1, max_queue=1, policy="reject")
        jobs = [tiny_job(name=f"j{i}", seed=i) for i in range(6)]
        n_admitted = engine.submit_many(jobs)
        report = engine.drain()
        assert n_admitted + report.n_rejected == 6
        assert report.n_completed == n_admitted
        assert engine.registry.counter("campaign/rejected").value == \
            report.n_rejected

    def test_strict_submit_raises_on_shed(self):
        engine = CampaignEngine(n_workers=1, max_queue=1, policy="reject")
        with pytest.raises(AdmissionError):
            for i in range(10):
                engine.submit(tiny_job(name=f"s{i}", seed=i), strict=True)
        engine.drain()

    def test_throughput_and_queue_metrics(self):
        engine = CampaignEngine(n_workers=2)
        report = engine.run([tiny_job(name=f"t{i}", seed=i)
                             for i in range(4)])
        assert report.universes_per_hour > 0
        h = engine.registry.histogram("campaign/queue_wait_s")
        assert h.count == 4
        assert engine.registry.gauge(
            "campaign/universes_per_hour").value == pytest.approx(
            report.universes_per_hour)
