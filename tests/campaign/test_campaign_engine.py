"""End-to-end campaign runs: cache transparency and bit-identity.

The load-bearing guarantee: a job's final particle state is a pure
function of the job spec — independent of cache temperature, eviction
pressure, pool concurrency, and which worker ran it.
"""

import numpy as np
import pytest

from repro.campaign import (
    ArtifactCache,
    CampaignEngine,
    CampaignSpec,
    SimJob,
    expand_sweep,
    run_job,
)
from repro.observe import Observatory


def small_job(**over) -> SimJob:
    over.setdefault("n_per_dim", 4)
    over.setdefault("pm_grid", 8)
    return SimJob(**over)


class TestBitIdentity:
    def test_warm_equals_cold_equals_uncached(self):
        job = small_job(name="bi")
        cache = ArtifactCache()
        uncached = run_job(job, keep_state=True)
        cold = run_job(job, cache=cache, keep_state=True)
        warm = run_job(job, cache=cache, keep_state=True)
        assert cold.state_hash == warm.state_hash == uncached.state_hash
        for k in uncached.state:
            np.testing.assert_array_equal(uncached.state[k], warm.state[k])
        st = cache.stats()
        assert st["misses"] == 3  # power, ics, greens built once
        assert st["hits"] == 3  # ... and reused once each

    def test_eviction_pressure_never_changes_results(self):
        job = small_job(name="evict")
        reference = run_job(job).state_hash
        # budget so tight every artifact is evicted between runs
        cache = ArtifactCache(max_bytes=2048)
        hashes = [run_job(job, cache=cache).state_hash for _ in range(3)]
        assert cache.stats()["evictions"] > 0
        assert all(h == reference for h in hashes)

    def test_distinct_seeds_distinct_states(self):
        cache = ArtifactCache()
        h1 = run_job(small_job(seed=1), cache=cache).state_hash
        h2 = run_job(small_job(seed=2), cache=cache).state_hash
        assert h1 != h2

    def test_distinct_cosmologies_distinct_states(self):
        cache = ArtifactCache()
        from repro.cosmology.background import Cosmology

        h1 = run_job(small_job(cosmo=Cosmology(sigma8=0.76)),
                     cache=cache).state_hash
        h2 = run_job(small_job(cosmo=Cosmology(sigma8=0.81)),
                     cache=cache).state_hash
        assert h1 != h2

    def test_pool_run_matches_direct_run(self):
        jobs = [small_job(name=f"p{i}", seed=i + 1) for i in range(4)]
        direct = {j.name: run_job(j).state_hash for j in jobs}
        report = CampaignEngine(n_workers=3).run(jobs)
        pooled = {r.job.name: r.state_hash for r in report.results}
        assert pooled == direct

    def test_distributed_job_deterministic(self):
        job = small_job(name="dist", box=120.0, pm_grid=32, ranks=2,
                        hydro=False)
        cache = ArtifactCache()
        h1 = run_job(job, cache=cache).state_hash
        h2 = run_job(job, cache=cache).state_hash
        assert h1 == h2


class TestSharedArtifacts:
    def test_repeated_cosmology_sweep_shares_artifacts(self):
        # 4 tenants, same cosmology, different seeds: power + greens are
        # shared; ICs are per-seed
        jobs = [small_job(name=f"t{i}", tenant=f"tenant{i}", seed=i + 1)
                for i in range(4)]
        engine = CampaignEngine(n_workers=2)
        report = engine.run(jobs)
        assert report.n_completed == 4
        assert engine.cache.stats("power") == \
            {"hits": 3, "misses": 1, "evictions": 0}
        assert engine.cache.stats("greens") == \
            {"hits": 3, "misses": 1, "evictions": 0}
        assert engine.cache.stats("ics")["misses"] == 4

    def test_campaign_spans_emitted(self):
        obs = Observatory(tracing=True)
        engine = CampaignEngine(n_workers=1, observe=obs)
        engine.run([small_job(name="sp")])
        names = {e.name for e in obs.tracer.events}
        for expected in ("campaign/job", "campaign/queued", "campaign/power",
                         "campaign/ics", "campaign/build", "campaign/run"):
            assert expected in names, expected
        # every campaign span name is registered in the taxonomy
        from repro.observe.taxonomy import is_registered

        assert all(is_registered(n) for n in names if n.startswith("campaign/"))


class TestSpec:
    def test_sweep_expansion_cartesian(self):
        jobs = expand_sweep(
            {"n_per_dim": 4, "tenant": "s"},
            {"seed": [1, 2, 3], "sigma8": [0.76, 0.81]},
        )
        assert len(jobs) == 6
        assert len({(j.seed, j.cosmo.sigma8) for j in jobs}) == 6
        assert all(j.tenant == "s" for j in jobs)
        assert len({j.name for j in jobs}) == 6  # auto-named uniquely

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError, match="unknown job field"):
            expand_sweep({"n_per_dmi": 4}, None)

    def test_spec_file_roundtrip(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            '{"workers": 3, "max_queue": 4, "policy": "reject",'
            ' "base": {"n_per_dim": 4, "pm_grid": 8},'
            ' "sweep": {"seed": [1, 2]},'
            ' "jobs": [{"name": "vip", "priority": 0, "seed": 5}]}'
        )
        spec = CampaignSpec.load(str(spec_path))
        assert spec.workers == 3 and spec.policy == "reject"
        assert len(spec.jobs) == 3
        vip = [j for j in spec.jobs if j.name == "vip"][0]
        assert vip.priority == 0 and vip.n_per_dim == 4  # base folded in
