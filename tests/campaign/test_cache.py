"""Artifact-cache correctness: key isolation, exact counters, LRU safety."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.cache import (
    ArtifactCache,
    content_hash,
    cosmology_key,
    greens_key,
    ic_key,
    power_key,
)
from repro.cosmology.background import Cosmology
from repro.observe.metrics import MetricsRegistry

# bounded, distinct-able cosmology parameter strategies
_omega_m = st.floats(0.1, 0.6, allow_nan=False)
_sigma8 = st.floats(0.5, 1.2, allow_nan=False)
_h = st.floats(0.5, 0.9, allow_nan=False)


class TestKeyIsolation:
    """Distinct physics never shares a cache address (the property the
    whole multi-tenant design rests on)."""

    @given(om1=_omega_m, om2=_omega_m, s81=_sigma8, s82=_sigma8)
    @settings(max_examples=50, deadline=None)
    def test_distinct_cosmologies_distinct_keys(self, om1, om2, s81, s82):
        c1 = Cosmology(omega_m=om1, sigma8=s81)
        c2 = Cosmology(omega_m=om2, sigma8=s82)
        same_params = (om1 == om2) and (s81 == s82)
        assert (cosmology_key(c1) == cosmology_key(c2)) == same_params
        assert (content_hash(power_key(c1)) ==
                content_hash(power_key(c2))) == same_params

    @given(seed1=st.integers(0, 10), seed2=st.integers(0, 10),
           n1=st.integers(2, 8), n2=st.integers(2, 8))
    @settings(max_examples=50, deadline=None)
    def test_distinct_seeds_or_n_distinct_ic_keys(self, seed1, seed2, n1, n2):
        cosmo = Cosmology()
        k1 = ic_key(n1, 20.0, cosmo, 0.25, seed1)
        k2 = ic_key(n2, 20.0, cosmo, 0.25, seed2)
        assert (content_hash(k1) == content_hash(k2)) == \
            ((seed1, n1) == (seed2, n2))

    def test_kinds_never_collide(self):
        cosmo = Cosmology()
        keys = [ic_key(4, 20.0, cosmo, 0.25, 1), power_key(cosmo),
                greens_key(8, 20.0, 0.0)]
        assert len({content_hash(k) for k in keys}) == len(keys)

    def test_greens_key_covers_every_knob(self):
        base = greens_key(8, 20.0, 1.0)
        assert greens_key(16, 20.0, 1.0) != base
        assert greens_key(8, 40.0, 1.0) != base
        assert greens_key(8, 20.0, 2.0) != base
        assert greens_key(8, 20.0, 1.0, deconvolve_cic=False) != base


class TestCounters:
    """Hit/miss/eviction counters are exact, including under concurrency."""

    def test_exact_hits_and_misses(self):
        reg = MetricsRegistry()
        cache = ArtifactCache(registry=reg)
        builds = []
        for i in (1, 1, 2, 1, 2, 3):
            cache.get_or_build("ics", ("k", i),
                               lambda i=i: builds.append(i) or np.ones(4))
        assert builds == [1, 2, 3]
        assert cache.stats("ics") == {"hits": 3, "misses": 3, "evictions": 0}
        assert reg.counter("campaign/cache/ics/hits").value == 3
        assert reg.counter("campaign/cache/ics/misses").value == 3

    def test_concurrent_same_key_single_flight(self):
        cache = ArtifactCache()
        n_builds = [0]
        gate = threading.Event()

        def builder():
            n_builds[0] += 1
            gate.wait(1.0)
            return np.arange(10.0)

        results = [None] * 8

        def fetch(i):
            results[i] = cache.get_or_build("ics", ("same",), builder)

        threads = [threading.Thread(target=fetch, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert n_builds[0] == 1  # exactly one builder ran
        assert all(r is results[0] for r in results)
        st = cache.stats("ics")
        assert st["misses"] == 1 and st["hits"] == 7

    def test_builder_error_propagates_and_leaves_no_entry(self):
        cache = ArtifactCache()

        def boom():
            raise RuntimeError("builder failed")

        with pytest.raises(RuntimeError):
            cache.get_or_build("ics", ("bad",), boom)
        assert len(cache) == 0
        # the key is retryable after a failure
        val = cache.get_or_build("ics", ("bad",), lambda: np.ones(2))
        assert val is not None


class TestLRUBudget:
    def test_eviction_under_tight_budget(self):
        cache = ArtifactCache(max_bytes=4096)
        for i in range(4):
            cache.get_or_build("ics", ("k", i), lambda: np.ones(16),
                               nbytes=2048)
        assert len(cache) == 2  # budget holds two entries
        assert cache.nbytes <= 4096
        assert cache.stats("ics")["evictions"] == 2

    def test_lru_order_evicts_least_recent(self):
        cache = ArtifactCache(max_bytes=4096)
        a = cache.get_or_build("ics", ("a",), lambda: np.ones(1), nbytes=2048)
        cache.get_or_build("ics", ("b",), lambda: np.ones(2), nbytes=2048)
        # touch a so b becomes the LRU victim
        assert cache.get_or_build("ics", ("a",), lambda: np.ones(3)) is a
        cache.get_or_build("ics", ("c",), lambda: np.ones(4), nbytes=2048)
        assert cache.get_or_build("ics", ("a",),
                                  lambda: np.full(1, 9.0)) is a  # still hit
        st = cache.stats("ics")
        assert st["evictions"] == 1

    def test_oversized_artifact_stays_resident(self):
        cache = ArtifactCache(max_bytes=1024)
        big = cache.get_or_build("ics", ("big",), lambda: np.ones(4096))
        assert len(cache) == 1
        assert cache.get_or_build("ics", ("big",), lambda: None) is big

    def test_cached_values_are_frozen(self):
        cache = ArtifactCache()
        arr = cache.get_or_build("ics", ("frozen",), lambda: np.ones(8))
        with pytest.raises(ValueError):
            arr[0] = 5.0
