"""Campaign job cancellation, deadlines, and retry re-admission."""

import numpy as np
import pytest

import repro.campaign.scheduler as scheduler_mod
from repro.campaign import CampaignEngine, JobCancelled, SimJob
from repro.campaign.runner import run_job
from repro.resilience import RetryPolicy


def tiny_job(**kw):
    kw.setdefault("n_per_dim", 4)
    kw.setdefault("n_pm_steps", 1)
    return SimJob(**kw)


class TestRetryPolicy:
    def test_bounded_attempts(self):
        p = RetryPolicy(max_attempts=3)
        assert p.allows(1) and p.allows(2)
        assert not p.allows(3)

    def test_exponential_backoff_capped(self):
        p = RetryPolicy(base_backoff_s=2.0, factor=3.0, max_backoff_s=10.0)
        assert p.backoff_s(1) == 2.0
        assert p.backoff_s(2) == 6.0
        assert p.backoff_s(3) == 10.0  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)


class TestDeadlines:
    def test_deadline_cancels_serial_job(self):
        job = tiny_job(name="slow", tenant="t1", n_per_dim=6,
                       n_pm_steps=4, deadline_s=1e-6)
        eng = CampaignEngine(n_workers=1, cache_bytes=0)
        eng.submit(job)
        rep = eng.drain()
        r = rep.results[0]
        assert r.status == "cancelled" and r.attempts == 1
        assert "deadline" in r.error
        assert rep.n_cancelled == 1 and rep.n_failed == 0
        row = rep.tenants[0]
        assert row.jobs_cancelled == 1 and row.jobs_completed == 0

    def test_deadline_cancels_distributed_job(self):
        # the hook raises on a rank thread; World.run wraps it in a
        # CommError and the scheduler must unwrap the cause chain
        job = tiny_job(name="dist", box=120.0, pm_grid=32, ranks=2,
                       n_pm_steps=3, hydro=False, deadline_s=1e-6)
        eng = CampaignEngine(n_workers=1, cache_bytes=0)
        eng.submit(job)
        rep = eng.drain()
        assert rep.results[0].status == "cancelled"

    def test_run_job_without_deadline_completes(self):
        result = run_job(tiny_job(name="free"))
        assert result.status == "completed" and result.attempts == 1


class TestExplicitCancel:
    def test_cancel_queued_job_skips_dispatch(self):
        eng = CampaignEngine(n_workers=1, cache_bytes=0)
        eng.submit(tiny_job(name="keep"))
        eng.submit(tiny_job(name="drop"))
        assert eng.cancel("drop") == 1
        assert eng.cancel("drop") == 0  # already flagged
        rep = eng.drain()
        by = {r.job.name: r for r in rep.results}
        assert by["keep"].status == "completed"
        assert by["drop"].status == "cancelled"
        assert "queued" in by["drop"].error

    def test_cancelled_event_recorded_in_trace(self):
        from repro.observe import Observatory

        obs = Observatory(tracing=True)
        eng = CampaignEngine(n_workers=1, cache_bytes=0, observe=obs)
        eng.submit(tiny_job(name="x"))
        eng.cancel("x")
        eng.drain()
        names = {ev.get("name")
                 for ev in obs.export_chrome_trace()["traceEvents"]}
        assert "campaign/cancelled" in names


class TestRetry:
    def test_failed_job_retried_until_success(self, monkeypatch):
        calls = {"n": 0}
        orig = run_job

        def flaky(job, **kw):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return orig(job, **kw)

        monkeypatch.setattr(scheduler_mod, "run_job", flaky)
        eng = CampaignEngine(
            n_workers=1, cache_bytes=0,
            retry=RetryPolicy(max_attempts=3, base_backoff_s=2.0),
        )
        eng.submit(tiny_job(name="flaky", tenant="t2"))
        rep = eng.drain()
        r = rep.results[0]
        assert r.status == "completed" and r.attempts == 3
        assert len(rep.results) == 1  # retries are not recorded as final
        row = [t for t in rep.tenants if t.tenant == "t2"][0]
        assert row.retries == 2
        # simulated-clock exponential backoff: 2.0 + 4.0
        assert row.backoff_sim_s == pytest.approx(6.0)

    def test_exhausted_retries_land_as_failed(self, monkeypatch):
        def dead(job, **kw):
            raise RuntimeError("permanent")

        monkeypatch.setattr(scheduler_mod, "run_job", dead)
        eng = CampaignEngine(
            n_workers=1, cache_bytes=0,
            retry=RetryPolicy(max_attempts=2, base_backoff_s=1.0),
        )
        eng.submit(tiny_job(name="dead", tenant="t3"))
        rep = eng.drain()
        r = rep.results[0]
        assert r.status == "failed" and r.attempts == 2
        row = [t for t in rep.tenants if t.tenant == "t3"][0]
        assert row.jobs_failed == 1 and row.retries == 1

    def test_cancelled_jobs_never_retried(self, monkeypatch):
        def would_cancel(job, **kw):
            raise JobCancelled("stop it")

        monkeypatch.setattr(scheduler_mod, "run_job", would_cancel)
        eng = CampaignEngine(
            n_workers=1, cache_bytes=0,
            retry=RetryPolicy(max_attempts=5),
        )
        eng.submit(tiny_job(name="c"))
        rep = eng.drain()
        r = rep.results[0]
        assert r.status == "cancelled" and r.attempts == 1
        assert rep.n_cancelled == 1

    def test_no_retry_policy_fails_immediately(self, monkeypatch):
        def dead(job, **kw):
            raise RuntimeError("boom")

        monkeypatch.setattr(scheduler_mod, "run_job", dead)
        eng = CampaignEngine(n_workers=1, cache_bytes=0)
        eng.submit(tiny_job(name="d"))
        rep = eng.drain()
        assert rep.results[0].status == "failed"
        assert rep.results[0].attempts == 1


class TestRetryStateIdentity:
    def test_retried_run_bit_identical_to_clean_run(self, monkeypatch):
        """A job that fails once and retries delivers the same universe
        as one that never failed (jobs are immutable value objects)."""
        orig = run_job
        calls = {"n": 0}

        def once_flaky(job, **kw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return orig(job, **kw)

        monkeypatch.setattr(scheduler_mod, "run_job", once_flaky)
        eng = CampaignEngine(n_workers=1, cache_bytes=0,
                             retry=RetryPolicy(max_attempts=2))
        eng.submit(tiny_job(name="j", seed=3))
        rep = eng.drain()
        clean = orig(tiny_job(name="j", seed=3))
        assert rep.results[0].state_hash == clean.state_hash
