"""Distributed driver traces: overlap visibility, rank tracks, determinism.

The PR's acceptance check lives here: a 4-rank ``comm_mode="overlap"``
run exports a valid Chrome trace in which the nonblocking ghost-exchange
async slices visibly overlap the interior-compute spans on each rank's
track.
"""

import json

import numpy as np
import pytest

from repro.cosmology import PLANCK18, zeldovich_ics
from repro.observe import Observatory, load_chrome_trace, slice_intervals
from repro.observe.clock import WALL_PID
from repro.observe.taxonomy import DISTRIBUTED_PHASES, SPAN_NAMES
from repro.parallel.distributed_sim import (
    DistributedConfig,
    DistributedSimulation,
)

N_RANKS = 4


def _run(mode="overlap", tracing=True, n_ranks=N_RANKS, seed=3):
    box = 60.0
    cfg = DistributedConfig(
        box=box, pm_grid=32, a_init=0.2, a_final=0.3, n_pm_steps=2,
        cosmo=PLANCK18, r_split_cells=1.0, comm_mode=mode,
        net_latency_s=0.001,
    )
    ics = zeldovich_ics(7, box, PLANCK18, a_init=0.2, seed=seed)
    mass = np.full(len(ics.positions), ics.particle_mass)
    obs = Observatory(tracing=tracing)
    sim = DistributedSimulation(cfg, n_ranks, observe=obs)
    sim.run(ics.positions, ics.velocities, mass)
    return obs, sim


@pytest.fixture(scope="module")
def overlap_run():
    return _run("overlap")


class TestOverlapAcceptance:
    def test_trace_exports_valid_json_with_rank_tracks(self, overlap_run,
                                                       tmp_path):
        obs, _ = overlap_run
        path = str(tmp_path / "overlap.json")
        obs.export_chrome_trace(path)
        with open(path) as fh:
            doc = json.load(fh)  # must be valid JSON
        assert doc == load_chrome_trace(path)
        tracks = {(e["pid"], e["tid"]): e["args"]["name"]
                  for e in doc["traceEvents"] if e.get("name") == "thread_name"}
        for rank in range(N_RANKS):
            assert tracks[(WALL_PID, rank)] == f"rank {rank}"

    def test_ghost_exchange_overlaps_interior_compute(self, overlap_run):
        """On every rank track, interior-compute spans run while the
        nonblocking ghost exchange is still in flight — the comm/compute
        overlap of the paper's Section IV-A, visible in the trace."""
        obs, _ = overlap_run
        doc = obs.export_chrome_trace()
        ghosts = slice_intervals(doc, "ghost_exchange", ph="b")
        interiors = slice_intervals(doc, "short_range/interior")
        for rank in range(N_RANKS):
            track = (WALL_PID, rank)
            assert ghosts.get(track), f"rank {rank}: no ghost exchange slices"
            assert interiors.get(track), f"rank {rank}: no interior spans"
            contained = [
                (i0, i1)
                for (i0, i1) in interiors[track]
                for (g0, g1) in ghosts[track]
                if g0 <= i0 and i1 <= g1
            ]
            assert contained, (
                f"rank {rank}: no interior span inside a ghost-exchange "
                f"slice — overlap not visible"
            )

    def test_boundary_spans_follow_the_wait(self, overlap_run):
        """Boundary rows run only after the exchange completes: no
        boundary span may *start* before its rank's first ghost slice."""
        obs, _ = overlap_run
        doc = obs.export_chrome_trace()
        ghosts = slice_intervals(doc, "ghost_exchange", ph="b")
        boundaries = slice_intervals(doc, "short_range/boundary")
        for rank in range(N_RANKS):
            track = (WALL_PID, rank)
            first_post = min(g0 for g0, _ in ghosts[track])
            for b0, _ in boundaries[track]:
                assert b0 >= first_post

    def test_nonblocking_collectives_have_flow_arrows(self, overlap_run):
        obs, _ = overlap_run
        starts = {e.id for e in obs.tracer.events if e.ph == "s"}
        finishes = {e.id for e in obs.tracer.events if e.ph == "f"}
        assert starts, "no flow-start events from nonblocking posts"
        assert starts == finishes  # every post's arrow lands on a wait

    def test_fft_stages_recorded(self, overlap_run):
        obs, _ = overlap_run
        assert obs.tracer.spans("fft/forward")
        stages = obs.tracer.spans("fft/stage")
        assert stages and all(s.cat == "fft" for s in stages)

    def test_all_span_names_registered(self, overlap_run):
        obs, _ = overlap_run
        names = {e.name for e in obs.tracer.events if e.ph != "M"}
        assert names <= SPAN_NAMES


class TestStepRecordViews:
    def test_timers_and_comm_wait_shape(self, overlap_run):
        _, sim = overlap_run
        for rec in sim.step_records:
            assert tuple(rec.timers) == DISTRIBUTED_PHASES
            assert tuple(rec.comm_wait) == DISTRIBUTED_PHASES
            for phase in DISTRIBUTED_PHASES:
                assert rec.comm_wait[phase] <= rec.timers[phase] + 1e-9

    def test_traffic_absorbed_into_registry(self, overlap_run):
        obs, sim = overlap_run
        reg = obs.registry
        assert reg.get("comm/p2p_bytes").value == sim.traffic.p2p_bytes
        for rank, nb in sim.traffic.bytes_by_rank.items():
            assert reg.get(f"comm/bytes{{rank={rank}}}").value == nb


class TestBlockingMode:
    def test_blocking_waits_traced_as_comm_spans(self):
        obs, _ = _run("blocking")
        exchanges = obs.tracer.spans("comm/exchange")
        assert exchanges and all(e.cat == "comm" for e in exchanges)
        assert {e.tid for e in exchanges} == set(range(N_RANKS))
        waits = obs.tracer.spans("comm/wait")
        barriers = obs.tracer.spans("comm/barrier")
        assert waits or barriers


class TestMergeDeterminism:
    def test_span_structure_identical_across_runs(self):
        """Per-rank span skeletons are reproducible run to run even though
        rank threads race on wall time — the CI trace-diff guarantee."""
        obs_a, _ = _run("overlap")
        obs_b, _ = _run("overlap")
        assert obs_a.tracer.structure() == obs_b.tracer.structure()

    def test_exported_merge_order_identical_across_runs(self):
        def skeleton(obs):
            return [(e["pid"], e["tid"], e["ph"], e["name"])
                    for e in obs.export_chrome_trace()["traceEvents"]]

        obs_a, _ = _run("overlap")
        obs_b, _ = _run("overlap")
        assert skeleton(obs_a) == skeleton(obs_b)
