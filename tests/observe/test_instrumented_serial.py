"""Serial driver instrumentation: spans, registry views, determinism."""

import numpy as np
import pytest

from repro.core.simulation import PHASE_KEYS, Simulation, SimulationConfig
from repro.cosmology import PLANCK18, zeldovich_ics
from repro.core.particles import make_gas_dm_pair
from repro.observe import Observatory
from repro.observe.taxonomy import SERIAL_PHASES


def _small_sim(observe=None, seed=9, n_pm_steps=2):
    box = 20.0
    ics = zeldovich_ics(5, box, PLANCK18, a_init=0.25, seed=seed)
    parts = make_gas_dm_pair(
        ics.positions, ics.velocities, ics.particle_mass,
        PLANCK18.omega_b, PLANCK18.omega_m, u_init=20.0, box=box,
    )
    cfg = SimulationConfig(
        box=box, pm_grid=12, a_init=0.25, a_final=0.35,
        n_pm_steps=n_pm_steps, cosmo=PLANCK18, max_rung=2,
    )
    return Simulation(cfg, parts, observe=observe)


class TestStepRecordShape:
    def test_timers_public_dict_shape_unchanged(self):
        """StepRecord.timers is now a registry view but keeps the public
        mapping behaviour consumers relied on."""
        sim = _small_sim()
        records = sim.run()
        for rec in records:
            assert set(rec.timers) == set(PHASE_KEYS)
            assert all(isinstance(v, float) for v in rec.timers.values())
            assert sum(rec.timers.values()) > 0.0
        assert PHASE_KEYS == SERIAL_PHASES

    def test_timers_are_registry_views(self):
        obs = Observatory()
        sim = _small_sim(observe=obs)
        records = sim.run()
        keys = [k for k in obs.registry.names() if k.startswith("sim")]
        assert len(keys) == len(records) * len(PHASE_KEYS)
        for rec in records:
            for phase in PHASE_KEYS:
                (full,) = [k for k in keys
                           if k.endswith(f"step{rec.step:05d}/{phase}")]
                assert obs.registry.get(full).value == rec.timers[phase]

    def test_subcycle_stats_absorbed(self):
        obs = Observatory()
        sim = _small_sim(observe=obs)
        records = sim.run()
        total_sub = sum(r.n_substeps for r in records)
        assert obs.registry.get("subcycle/n_substeps").value == total_sub
        assert obs.registry.get("subcycle/active_fraction").count == \
            len(records)

    def test_timing_summary_matches_records(self):
        sim = _small_sim()
        sim.run()
        summary = sim.timing_summary()
        for phase in PHASE_KEYS:
            expect = sum(r.timers[phase] for r in sim.history)
            assert summary[phase] == pytest.approx(expect, abs=1e-12)
        fr = sim.timing_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)


class TestSerialTrace:
    def test_step_spans_wrap_phase_spans(self):
        obs = Observatory(tracing=True)
        sim = _small_sim(observe=obs)
        records = sim.run()
        steps = obs.tracer.spans("step")
        assert len(steps) == len(records)
        assert all(s.cat == "driver" and s.depth == 0 for s in steps)
        # every phase span sits strictly inside a step span
        for phase in ("tree_build", "long_range", "short_range", "hydro"):
            for ev in obs.tracer.spans(phase):
                assert ev.depth >= 1
                host = [s for s in steps
                        if s.ts - 1e-9 <= ev.ts
                        and ev.ts + ev.dur <= s.ts + s.dur + 1e-9]
                assert host, f"{phase} span not inside any step span"

    def test_step_span_args_carry_step_and_a(self):
        obs = Observatory(tracing=True)
        sim = _small_sim(observe=obs, n_pm_steps=1)
        sim.run()
        (step,) = obs.tracer.spans("step")
        assert step.args["step"] == 0
        assert step.args["a"] == pytest.approx(0.25)

    def test_span_structure_deterministic_across_runs(self):
        """Same configuration, same seed -> identical span skeleton
        (names, nesting, order); timestamps are free to differ."""

        def structure():
            obs = Observatory(tracing=True)
            sim = _small_sim(observe=obs)
            sim.run()
            return list(obs.tracer.structure().values())

        assert structure() == structure()

    def test_no_events_recorded_when_off(self):
        obs = Observatory()
        sim = _small_sim(observe=obs)
        sim.run()
        assert obs.tracing is False
        assert not hasattr(obs.tracer, "events")
