"""Metrics registry: instruments, absorbers, TimerGroup dict shape."""

import pytest

from repro.core.timestep import SubcycleStats
from repro.gpusim.counters import OpCounters
from repro.observe import MetricsRegistry, Tracer
from repro.parallel.comm import TrafficStats


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("io/bytes")
        c.add(10)
        c.add(5)
        assert reg.counter("io/bytes").value == 15
        assert reg.counter("io/bytes") is c

    def test_gauge_keeps_last(self):
        reg = MetricsRegistry()
        g = reg.gauge("util")
        g.set(0.3)
        g.set(0.7)
        assert g.value == 0.7

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("ranks")
        h.observe([1.0, 2.0, 3.0])
        h.observe(4.0)
        assert h.count == 4
        assert h.mean == 2.5
        assert (h.min, h.max) == (1.0, 4.0)
        assert h.summary()["total"] == 10.0

    def test_typed_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.gauge("wait", rank=0).set(1.0)
        reg.gauge("wait", rank=1).set(2.0)
        assert reg.get("wait{rank=0}").value == 1.0
        assert reg.get("wait{rank=1}").value == 2.0

    def test_snapshot_and_names(self):
        reg = MetricsRegistry()
        reg.counter("a").add(1)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["a"] == 1
        assert snap["h"]["count"] == 1
        assert reg.names() == ["a", "h"]


class TestAbsorbers:
    def test_absorb_traffic(self):
        reg = MetricsRegistry()
        stats = TrafficStats(p2p_messages=4, p2p_bytes=100,
                             collective_calls=2, collective_bytes=50)
        stats.add_wait(0, 0.25)
        stats.add_bytes(0, 60)
        stats.add_bytes(1, 40)
        reg.absorb_traffic(stats)
        assert reg.get("comm/p2p_bytes").value == 100
        assert reg.get("comm/collective_calls").value == 2
        assert reg.get("comm/wait_seconds{rank=0}").value == 0.25
        assert reg.get("comm/bytes{rank=1}").value == 40

    def test_absorb_traffic_is_idempotent(self):
        """Re-absorbing the same stats is a set, not a double-count."""
        reg = MetricsRegistry()
        stats = TrafficStats(p2p_bytes=100)
        reg.absorb_traffic(stats)
        reg.absorb_traffic(stats)
        assert reg.get("comm/p2p_bytes").value == 100

    def test_absorb_op_counters(self):
        reg = MetricsRegistry()
        c = OpCounters(fp32_add=10, fp32_fma=5, global_load_bytes=64,
                       active_lane_ops=48, issued_lane_ops=64)
        reg.absorb_op_counters(c)
        assert reg.get("gpu/flops").value == c.flops
        assert reg.get("gpu/bytes_moved").value == 64
        assert reg.get("gpu/lane_efficiency").value == 48 / 64
        # deltas accumulate; derived gauges track the running totals
        reg.absorb_op_counters(OpCounters(fp32_add=10, issued_lane_ops=64))
        assert reg.get("gpu/flops").value == c.flops + 10
        assert reg.get("gpu/lane_efficiency").value == 48 / 128

    def test_absorb_subcycle(self):
        reg = MetricsRegistry()
        s = SubcycleStats(n_substeps=8, n_force_evaluations=9,
                          n_active_total=900, deepest_rung=3,
                          n_particles=100, n_fft=1, n_pairs=1234)
        reg.absorb_subcycle(s)
        assert reg.get("subcycle/n_substeps").value == 8
        assert reg.get("subcycle/deepest_rung").value == 3
        h = reg.get("subcycle/active_fraction")
        assert h.count == 1
        assert h.mean == s.mean_active_fraction


class TestTimerGroup:
    def test_mapping_shape(self):
        from repro.observe import TimerGroup

        reg = MetricsRegistry()
        tg = TimerGroup(reg, "step0", keys=("a", "b"))
        assert list(tg) == ["a", "b"]
        assert len(tg) == 2
        assert dict(tg) == {"a": 0.0, "b": 0.0}
        assert tg["a"] == 0.0

    def test_time_accumulates_seconds(self):
        from repro.observe import TimerGroup

        reg = MetricsRegistry()
        tg = TimerGroup(reg, "step0", keys=("a",))
        with tg.time("a") as t:
            pass
        assert t.seconds >= 0.0
        assert tg["a"] == t.seconds
        assert reg.get("step0/a").value == tg["a"]

    def test_add_external_seconds(self):
        from repro.observe import TimerGroup

        reg = MetricsRegistry()
        tg = TimerGroup(reg, "w", keys=())
        tg.add("short_range", 1.5)
        tg.add("short_range", 0.5)
        assert dict(tg) == {"short_range": 2.0}

    def test_registration_order_iteration(self):
        from repro.observe import TimerGroup

        reg = MetricsRegistry()
        tg = TimerGroup(reg, "p", keys=("z", "a"))
        tg.add("m", 0.0)
        assert list(tg) == ["z", "a", "m"]

    def test_time_emits_span_when_tracing(self):
        from repro.observe import TimerGroup

        reg = MetricsRegistry()
        tr = Tracer()
        tg = TimerGroup(reg, "step0", keys=("hydro",), tracer=tr, cat="phase")
        with tg.time("hydro", step=2):
            pass
        (ev,) = tr.events
        assert ev.name == "hydro"
        assert ev.cat == "phase"
        assert ev.args == {"step": 2}
        assert abs(ev.dur - tg["hydro"]) < 0.05


class TestObservatory:
    def test_default_is_null(self):
        from repro.observe import Observatory

        obs = Observatory()
        assert obs.tracing is False

    def test_scopes_never_collide(self):
        from repro.observe import Observatory

        obs = Observatory()
        assert obs.scope("sim") != obs.scope("sim")

    def test_export_roundtrip(self, tmp_path):
        from repro.observe import Observatory, load_chrome_trace

        obs = Observatory(tracing=True)
        with obs.tracer.span("step"):
            pass
        path = str(tmp_path / "t.json")
        obs.export_chrome_trace(path)
        doc = load_chrome_trace(path)
        assert any(e["name"] == "step" for e in doc["traceEvents"])
