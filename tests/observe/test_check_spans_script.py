"""scripts/check_spans.py: the static span-taxonomy CI guard."""

import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SCRIPT = os.path.join(REPO, "scripts", "check_spans.py")


def _run(*args):
    return subprocess.run(
        [sys.executable, SCRIPT, *args],
        capture_output=True, text=True, cwd=REPO,
    )


def test_default_instrumented_set_is_clean():
    proc = _run()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout


def test_unregistered_span_name_fails(tmp_path):
    bad = tmp_path / "rogue.py"
    bad.write_text(
        "def f(tr):\n"
        "    with tr.span('made/up_name', cat='x'):\n"
        "        tr.async_begin('gpu/kernel_launch', '1')\n"
    )
    proc = _run(str(bad))
    assert proc.returncode == 1
    assert "made/up_name" in proc.stdout
    # the registered name on line 3 is not flagged
    assert "rogue.py:2" in proc.stdout
    assert "rogue.py:3" not in proc.stdout


def test_missing_file_is_an_error(tmp_path):
    proc = _run(str(tmp_path / "nope.py"))
    assert proc.returncode == 2
