"""Chrome trace-event export: Perfetto schema, round-trip, determinism."""

import json

import pytest

from repro.observe import (
    Tracer,
    load_chrome_trace,
    slice_intervals,
    sort_events,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.observe.clock import SIM_PID, WALL_PID


def _sample_tracer():
    tr = Tracer()
    tr.set_track(0, "rank 0")
    with tr.span("step", cat="driver", step=1):
        with tr.span("hydro"):
            pass
        aid = tr.next_id()
        tr.async_begin("ghost_exchange", aid, cat="async")
        tr.flow_start("ghost_exchange", aid)
        tr.async_end("ghost_exchange", aid, cat="async")
        tr.flow_end("ghost_exchange", aid)
    tr.instant("checkpoint", step=1)
    tr.complete("io/nvme_write", ts=5.0, dur=1.0, cat="io",
                pid=SIM_PID, tid=0)
    return tr


class TestChromeSchema:
    def test_trace_events_object_shape(self):
        doc = to_chrome_trace(_sample_tracer())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        for ev in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], float)

    def test_metadata_events_lead(self):
        doc = to_chrome_trace(_sample_tracer())
        evs = doc["traceEvents"]
        n_meta = sum(1 for e in evs if e["ph"] == "M")
        assert all(e["ph"] == "M" for e in evs[:n_meta])
        names = {(e["pid"], e["tid"]): e["args"]["name"]
                 for e in evs if e["name"] == "thread_name"}
        assert names[(WALL_PID, 0)] == "rank 0"
        procs = {e["pid"] for e in evs if e["name"] == "process_name"}
        assert {WALL_PID, SIM_PID} <= procs

    def test_timestamps_are_microseconds(self):
        doc = to_chrome_trace(_sample_tracer())
        ev = next(e for e in doc["traceEvents"]
                  if e["name"] == "io/nvme_write")
        assert ev["ts"] == 5.0e6
        assert ev["dur"] == 1.0e6

    def test_complete_spans_have_dur(self):
        doc = to_chrome_trace(_sample_tracer())
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                assert "dur" in ev and ev["dur"] >= 0.0
            else:
                assert "dur" not in ev

    def test_async_pair_matched_on_cat_and_id(self):
        doc = to_chrome_trace(_sample_tracer())
        b = [e for e in doc["traceEvents"] if e["ph"] == "b"]
        e = [e for e in doc["traceEvents"] if e["ph"] == "e"]
        assert len(b) == len(e) == 1
        assert (b[0]["cat"], b[0]["id"]) == (e[0]["cat"], e[0]["id"])

    def test_flow_events_bind_to_enclosing_slice(self):
        doc = to_chrome_trace(_sample_tracer())
        s = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        f = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(s) == len(f) == 1
        assert s[0]["id"] == f[0]["id"]
        assert f[0]["bp"] == "e"  # arrow head binds to enclosing slice
        assert "bp" not in s[0]

    def test_instants_are_thread_scoped(self):
        doc = to_chrome_trace(_sample_tracer())
        inst = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert inst["s"] == "t"

    def test_args_are_jsonable(self, tmp_path):
        tr = Tracer()
        with tr.span("k") as sp:
            sp.set_args(counters={"flops": 12}, fields=("pos", "vel"),
                        obj=object())
        doc = write_chrome_trace(str(tmp_path / "t.json"), tr)
        json.dumps(doc)  # must not raise
        args = doc["traceEvents"][-1]["args"]
        assert args["counters"] == {"flops": 12}
        assert args["fields"] == ["pos", "vel"]
        assert isinstance(args["obj"], (str, float))


class TestRoundTrip:
    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        written = write_chrome_trace(path, _sample_tracer())
        loaded = load_chrome_trace(path)
        assert loaded == json.loads(json.dumps(written))

    def test_load_rejects_non_trace(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"foo": 1}, fh)
        with pytest.raises(ValueError):
            load_chrome_trace(path)


class TestDeterminism:
    def test_sort_events_by_track_then_seq(self):
        tr = _sample_tracer()
        order = [(e.pid, e.tid, e.seq) for e in sort_events(tr.events)]
        assert order == sorted(order)

    def test_exported_sequence_reproducible(self):
        """Two identical recordings export the same event name sequence
        (timestamps differ; structure must not)."""

        def skeleton(doc):
            return [(e["pid"], e["tid"], e["ph"], e["name"])
                    for e in doc["traceEvents"]]

        assert skeleton(to_chrome_trace(_sample_tracer())) == \
            skeleton(to_chrome_trace(_sample_tracer()))


class TestSliceIntervals:
    def test_x_intervals(self):
        doc = to_chrome_trace(_sample_tracer())
        iv = slice_intervals(doc, "step")
        assert list(iv) == [(WALL_PID, 0)]
        (t0, t1), = iv[(WALL_PID, 0)]
        assert t1 >= t0

    def test_async_intervals_pair_begin_end(self):
        doc = to_chrome_trace(_sample_tracer())
        iv = slice_intervals(doc, "ghost_exchange", ph="b")
        (t0, t1), = iv[(WALL_PID, 0)]
        assert t1 >= t0

    def test_missing_name_is_empty(self):
        doc = to_chrome_trace(_sample_tracer())
        assert slice_intervals(doc, "nope") == {}
