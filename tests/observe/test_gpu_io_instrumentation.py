"""GPU kernel-launch attribution and multi-tier I/O trace events."""

import numpy as np
import pytest

from repro.gpusim import MI250X_GCD, GPUResidentSolver, sph_density_kernel
from repro.gpusim.counters import OpCounters
from repro.iosim.tiers import MultiTierWriter
from repro.observe import Observatory, Tracer, slice_intervals
from repro.observe.clock import SIM_PID
from repro.observe.derived import flop_attribution, roofline_point
from repro.tree import (
    build_chaining_mesh,
    build_interaction_list,
    build_leaf_set,
)


class TestOpCountersDelta:
    def test_copy_is_independent(self):
        c = OpCounters(fp32_add=3, shuffles=2)
        snap = c.copy()
        c.fp32_add += 10
        assert snap.fp32_add == 3
        assert snap.shuffles == 2

    def test_delta_subtracts_every_field(self):
        before = OpCounters(fp32_add=3, fp32_fma=1, global_load_bytes=10)
        after = OpCounters(fp32_add=8, fp32_fma=4, global_load_bytes=50)
        d = after.delta(before)
        assert (d.fp32_add, d.fp32_fma, d.global_load_bytes) == (5, 3, 40)
        assert d.flops == 5 + 2 * 3

    def test_before_merge_delta_attribution(self):
        """The per-launch pattern: copy before, merge, delta after."""
        total = OpCounters(fp32_add=100)
        before = total.copy()
        total.merge(OpCounters(fp32_add=7, atomics=2))
        launch = total.delta(before)
        assert launch.fp32_add == 7
        assert launch.atomics == 2


@pytest.fixture(scope="module")
def gpu_pass():
    rng = np.random.default_rng(9)
    box = 4.0
    pos = rng.uniform(0, box, (300, 3))
    mass = rng.uniform(1, 2, 300)
    h = 0.5
    mesh = build_chaining_mesh(pos, 1.0, origin=0.0, extent=box,
                               periodic=False)
    leaves = build_leaf_set(pos, mesh, max_leaf=32)
    ilist = build_interaction_list(leaves, mesh, pad=h, box=None)

    tracer = Tracer()
    solver = GPUResidentSolver(MI250X_GCD, tracer=tracer)
    solver.upload(pos, {"m": mass, "h": np.full(len(pos), h)})
    result = solver.run_interaction_list(sph_density_kernel(h), leaves, ilist)
    result2 = solver.run_interaction_list(sph_density_kernel(h), leaves,
                                          ilist)
    return tracer, solver, result, result2


class TestKernelLaunchSpans:
    def test_upload_span_carries_bytes(self, gpu_pass):
        tracer, solver, *_ = gpu_pass
        (up,) = tracer.spans("gpu/upload")
        assert up.cat == "gpu"
        assert up.args["bytes"] == solver.total_h2d_bytes

    def test_one_span_per_launch_with_counter_delta(self, gpu_pass):
        tracer, solver, r1, r2 = gpu_pass
        launches = tracer.spans("gpu/kernel_launch")
        assert len(launches) == 2
        for span, res in zip(launches, (r1, r2)):
            assert span.args["kernel"] == "sph_density"
            assert span.args["counters"] == res.counters.snapshot()
            assert span.args["n_leaf_pairs"] == res.n_leaf_pairs
            assert span.args["lane_efficiency"] == \
                pytest.approx(res.counters.lane_efficiency)

    def test_total_counters_accumulate_across_launches(self, gpu_pass):
        _, solver, r1, r2 = gpu_pass
        assert solver.total_counters.flops == \
            r1.counters.flops + r2.counters.flops

    def test_flop_attribution_reads_span_args(self, gpu_pass):
        tracer, _, r1, r2 = gpu_pass
        attr = flop_attribution(tracer)
        assert attr == {"sph_density": r1.counters.flops + r2.counters.flops}

    def test_roofline_point_from_launch_delta(self, gpu_pass):
        _, _, r1, _ = gpu_pass
        pt = roofline_point(r1.counters, MI250X_GCD)
        assert pt.flops == r1.counters.flops
        assert pt.bound in ("memory", "compute")
        assert 0 < pt.attainable_fraction <= 1.0

    def test_untraced_solver_matches_traced(self, gpu_pass):
        """Instrumentation must not perturb the numerics."""
        tracer, solver, r1, _ = gpu_pass
        rng = np.random.default_rng(9)
        box = 4.0
        pos = rng.uniform(0, box, (300, 3))
        mass = rng.uniform(1, 2, 300)
        h = 0.5
        mesh = build_chaining_mesh(pos, 1.0, origin=0.0, extent=box,
                                   periodic=False)
        leaves = build_leaf_set(pos, mesh, max_leaf=32)
        ilist = build_interaction_list(leaves, mesh, pad=h, box=None)
        bare = GPUResidentSolver(MI250X_GCD)
        bare.upload(pos, {"m": mass, "h": np.full(len(pos), h)})
        res = bare.run_interaction_list(sph_density_kernel(h), leaves, ilist)
        np.testing.assert_array_equal(res.phi, r1.phi)


class TestTierTraceEvents:
    def test_sim_clock_events_deterministic(self):
        """MultiTierWriter events carry explicit simulated-clock stamps on
        the SIM_PID process — bit-identical across runs."""

        def run():
            tr = Tracer()
            w = MultiTierWriter(n_nodes=64, tracer=tr)
            for step in range(3):
                w.checkpoint(step, data_tb=40.0, compute_seconds=100.0,
                             imbalance=1.5)
            return [(e.name, e.ph, e.ts, e.dur) for e in tr.events]

        a, b = run(), run()
        assert a == b

    def test_stall_write_bleed_timeline(self):
        tr = Tracer()
        w = MultiTierWriter(n_nodes=64, tracer=tr)
        # sizeable checkpoint, tiny compute window: the second write stalls
        recs = [w.checkpoint(s, data_tb=40.0, compute_seconds=0.1)
                for s in range(2)]
        assert recs[1].stall_seconds > 0
        assert all(e.pid == SIM_PID for e in tr.events)

        writes = tr.spans("io/nvme_write")
        stalls = tr.spans("io/stall")
        assert len(writes) == len(stalls) == 2
        assert stalls[1].dur == pytest.approx(recs[1].stall_seconds)
        # the second stall covers exactly the tail of the first bleed
        doc_events = [e for e in tr.events if e.name == "io/bleed"]
        assert [e.ph for e in doc_events] == ["b", "e", "b", "e"]
        first_bleed_end = doc_events[1].ts
        assert stalls[1].ts + stalls[1].dur == pytest.approx(first_bleed_end)
        # bleed slices overlap the compute window, not the sync write
        assert doc_events[0].ts == pytest.approx(
            writes[0].ts + writes[0].dur
        )

    def test_bleed_slices_in_export(self):
        tr = Tracer()
        w = MultiTierWriter(n_nodes=16, tracer=tr)
        w.checkpoint(0, data_tb=10.0, compute_seconds=50.0)
        from repro.observe import to_chrome_trace

        doc = to_chrome_trace(tr)
        iv = slice_intervals(doc, "io/bleed", ph="b")
        ((t0, t1),) = iv[(SIM_PID, 0)]
        assert t1 > t0

    def test_untraced_writer_unchanged(self):
        traced = MultiTierWriter(n_nodes=64, tracer=Tracer())
        plain = MultiTierWriter(n_nodes=64)
        for step in range(3):
            a = traced.checkpoint(step, data_tb=40.0, compute_seconds=100.0)
            b = plain.checkpoint(step, data_tb=40.0, compute_seconds=100.0)
            assert a == b


class TestCheckpointPipelineTrace:
    def test_manager_and_bleeder_slices(self, tmp_path):
        """End-to-end: a sim with per-step checkpointing traces the sync
        write as io/checkpoint spans and the PFS drain as async slices."""
        from repro.iosim.manager import CheckpointManager
        from test_instrumented_serial import _small_sim

        obs = Observatory(tracing=True)
        sim = _small_sim(observe=obs, n_pm_steps=2)
        local, pfs = str(tmp_path / "nvme"), str(tmp_path / "pfs")
        with CheckpointManager(local, pfs, every=1) as mgr:
            sim.io_hooks.append(mgr)
            sim.run()
            assert mgr.bleeder.drain()
        ckpts = obs.tracer.spans("io/checkpoint")
        assert len(ckpts) == len(mgr.written) == 2
        assert all(c.args["bytes"] > 0 for c in ckpts)

        doc = obs.export_chrome_trace()
        drains = slice_intervals(doc, "io/pfs_drain", ph="b")
        n_drains = sum(len(v) for v in drains.values())
        assert n_drains == 2
        # each drain begins inside or after its sync checkpoint span
        ivs = sorted(iv for v in drains.values() for iv in v)
        for (d0, _), ck in zip(ivs, ckpts):
            assert d0 >= ck.ts * 1e6 - 1.0
