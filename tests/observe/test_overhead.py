"""Zero-cost-when-off: the null tracer's per-step overhead is <2%.

Comparing two noisy wall-clock runs makes a flaky test, so the bound is
assembled from stable parts: (instrumentation activations per step,
counted from a traced twin run) x (micro-measured cost of one null-path
activation) must stay under 2% of the measured step time.
"""

import time

from repro.observe import NullTracer, Observatory

from test_instrumented_serial import _small_sim


def test_null_tracer_step_overhead_below_two_percent():
    n_steps = 2

    # measured step time with tracing off (the production default)
    obs = Observatory()
    sim = _small_sim(observe=obs, n_pm_steps=n_steps)
    t0 = time.perf_counter()
    sim.run()
    step_seconds = (time.perf_counter() - t0) / n_steps

    # activations per step: every event a traced twin records corresponds
    # to one null-path activation when tracing is off
    obs_traced = Observatory(tracing=True)
    sim_traced = _small_sim(observe=obs_traced, n_pm_steps=n_steps)
    sim_traced.run()
    activations_per_step = len(obs_traced.tracer.events) / n_steps
    assert activations_per_step > 0

    # micro-measure the heaviest null-path primitive: a TimerGroup
    # activation (perf_counter pair + counter add + null span)
    bench = Observatory()
    tg = bench.timer_group("bench", keys=("x",))
    n = 20000
    t0 = time.perf_counter()
    for _ in range(n):
        with tg.time("x"):
            pass
    per_activation = (time.perf_counter() - t0) / n

    overhead_per_step = activations_per_step * per_activation
    assert overhead_per_step < 0.02 * step_seconds, (
        f"null-tracer overhead {overhead_per_step * 1e6:.1f}us/step is "
        f">=2% of the {step_seconds * 1e3:.1f}ms step"
    )


def test_null_span_allocation_free():
    tr = NullTracer()
    spans = {id(tr.span(f"s{i}")) for i in range(100)}
    assert len(spans) == 1  # one shared object, no per-call allocation
