"""Tracer core: span nesting, determinism, async slices, null tracer."""

import threading

import pytest

from repro.observe import NullTracer, SimClock, Tracer, WallClock
from repro.observe.clock import SIM_PID, WALL_PID


class TestSpans:
    def test_span_records_complete_event(self):
        tr = Tracer()
        with tr.span("hydro", cat="phase", step=3):
            pass
        (ev,) = tr.events
        assert ev.name == "hydro"
        assert ev.ph == "X"
        assert ev.cat == "phase"
        assert ev.args == {"step": 3}
        assert ev.dur >= 0.0
        assert ev.pid == WALL_PID

    def test_nesting_depth(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                with tr.span("innermost"):
                    pass
            with tr.span("sibling"):
                pass
        by_name = {e.name: e for e in tr.events}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["innermost"].depth == 2
        assert by_name["sibling"].depth == 1

    def test_seq_is_entry_order(self):
        """Events are emitted at exit (inner first) but seq records entry
        order — the structural invariant determinism rests on."""
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        inner, outer = tr.events[0], tr.events[1]
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.seq < inner.seq

    def test_set_args_inside_body(self):
        tr = Tracer()
        with tr.span("kernel") as sp:
            sp.set_args(flops=42)
        assert tr.events[0].args["flops"] == 42

    def test_span_contains_child_interval(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        inner = next(e for e in tr.events if e.name == "inner")
        outer = next(e for e in tr.events if e.name == "outer")
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur + 1e-9

    def test_spans_view_filters_and_orders(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        tr.instant("marker")
        with tr.span("b"):
            pass
        with tr.span("a"):
            pass
        assert [e.name for e in tr.spans()] == ["a", "b", "a"]
        assert len(tr.spans("a")) == 2


class TestTracks:
    def test_per_thread_tracks(self):
        tr = Tracer()

        def work(rank):
            tr.set_track(rank, f"rank {rank}")
            with tr.span("step"):
                pass

        threads = [threading.Thread(target=work, args=(r,)) for r in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tids = {e.tid for e in tr.events}
        assert tids == {0, 1, 2}
        assert tr.track_names[(WALL_PID, 2)] == "rank 2"

    def test_structure_excludes_timing(self):
        tr = Tracer()
        tr.set_track(0)
        with tr.span("step"):
            with tr.span("hydro"):
                pass
        s = tr.structure()
        assert s == {(WALL_PID, 0): [(0, "X", "step"), (1, "X", "hydro")]}


class TestAsyncAndFlow:
    def test_async_slice_pair(self):
        tr = Tracer()
        aid = tr.next_id()
        tr.async_begin("ghost_exchange", aid, cat="async", tid=1)
        tr.async_end("ghost_exchange", aid, cat="async", tid=1)
        b, e = tr.events
        assert (b.ph, e.ph) == ("b", "e")
        assert b.id == e.id == aid
        assert b.cat == e.cat == "async"

    def test_flow_pair(self):
        tr = Tracer()
        fid = tr.next_id()
        tr.flow_start("post", fid, tid=0)
        tr.flow_end("post", fid, tid=1)
        s, f = tr.events
        assert (s.ph, f.ph) == ("s", "f")
        assert s.id == f.id

    def test_next_id_unique(self):
        tr = Tracer()
        ids = {tr.next_id() for _ in range(100)}
        assert len(ids) == 100

    def test_explicit_sim_clock_timestamps(self):
        tr = Tracer()
        tr.complete("io/nvme_write", ts=10.0, dur=2.5, cat="io",
                    pid=SIM_PID, tid=0)
        ev = tr.events[0]
        assert (ev.ts, ev.dur, ev.pid) == (10.0, 2.5, SIM_PID)


class TestClocks:
    def test_wall_clock_monotone(self):
        c = WallClock()
        assert 0.0 <= c.now() <= c.now()

    def test_sim_clock_advance_and_set(self):
        c = SimClock()
        assert c.now() == 0.0
        c.advance(1.5)
        c.set(4.0)
        assert c.now() == 4.0
        with pytest.raises(ValueError):
            c.advance(-1.0)
        with pytest.raises(ValueError):
            c.set(1.0)


class TestNullTracer:
    def test_all_calls_are_noops(self):
        tr = NullTracer()
        assert tr.enabled is False
        with tr.span("anything", cat="x", foo=1) as sp:
            sp.set_args(bar=2)
        tr.set_track(3, "rank 3")
        tr.instant("i")
        tr.complete("c", ts=0.0, dur=1.0)
        tr.async_begin("a", "1")
        tr.async_end("a", "1")
        tr.flow_start("f", "1")
        tr.flow_end("f", "1")
        assert tr.next_id() == "0"

    def test_shared_null_span(self):
        """The null tracer returns one shared span object — no per-call
        allocation on the hot path."""
        tr = NullTracer()
        assert tr.span("a") is tr.span("b")
