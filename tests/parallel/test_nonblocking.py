"""Nonblocking request model: isend/irecv, i-collectives, abort, timeout."""

import time

import numpy as np
import pytest

from repro.parallel import CommError, CompletedRequest, RankFailure, World


class TestPointToPoint:
    def test_isend_irecv_roundtrip(self):
        world = World(2)

        def fn(comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(4.0), dest=1)
                assert isinstance(req, CompletedRequest)
                assert req.test()
                return None
            return comm.irecv(source=0).wait()

        res = world.run(fn)
        np.testing.assert_array_equal(res[1], np.arange(4.0))

    def test_test_polls_without_blocking_then_wait_is_instant(self):
        world = World(2)

        def fn(comm):
            if comm.rank == 0:
                time.sleep(0.05)
                comm.send("late", dest=1)
                return None
            req = comm.irecv(source=0)
            polls = 0
            while not req.test():
                polls += 1
                time.sleep(0.002)
            # already complete: wait() must not block even with a tiny timeout
            assert req.wait(timeout=1e-6) == "late"
            return polls

        assert world.run(fn)[1] >= 1

    def test_requests_complete_by_tag_not_arrival_order(self):
        world = World(2)

        def fn(comm):
            if comm.rank == 0:
                comm.send("b", dest=1, tag=2)
                comm.send("a", dest=1, tag=1)
                return None
            r1 = comm.irecv(source=0, tag=1)
            r2 = comm.irecv(source=0, tag=2)
            return r1.wait(), r2.wait()

        assert world.run(fn)[1] == ("a", "b")

    def test_overlapping_ring_all_posted_before_any_wait(self):
        world = World(4)

        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            reqs = [
                comm.isend(comm.rank, dest=right, tag=7),
                comm.irecv(source=left, tag=7),
            ]
            return [r.wait() for r in reqs][1]

        assert world.run(fn) == [3, 0, 1, 2]

    def test_blocking_recv_holds_back_other_tags(self):
        # regression: a tag-0 recv used to raise on (and drop) a queued
        # tag-1 message instead of leaving it for its own receive
        world = World(2)

        def fn(comm):
            if comm.rank == 0:
                comm.send("other", dest=1, tag=1)
                comm.send("mine", dest=1, tag=0)
                return None
            first = comm.recv(source=0, tag=0)
            second = comm.recv(source=0, tag=1)
            return first, second

        assert world.run(fn)[1] == ("mine", "other")


class TestNonblockingCollectives:
    def test_ialltoallv_matches_blocking(self):
        world = World(3)

        def fn(comm):
            outgoing = [
                np.full(d + 1, 10 * comm.rank + d, dtype=np.float64)
                for d in range(comm.size)
            ]
            got_nb = comm.ialltoallv([a.copy() for a in outgoing]).wait()
            got_b = comm.alltoallv(outgoing)
            assert all(
                np.array_equal(x, y) for x, y in zip(got_nb, got_b)
            )
            return [a.copy() for a in got_nb]

        res = world.run(fn)
        # rank 1 receives arrays of length 2 valued 10*src + 1
        for src in range(3):
            np.testing.assert_array_equal(
                res[1][src], np.full(2, 10 * src + 1, dtype=np.float64)
            )

    def test_iallreduce_ops(self):
        world = World(4)

        def fn(comm):
            v = float(comm.rank + 1)
            s = comm.iallreduce(v, op="sum").wait()
            lo = comm.iallreduce(v, op="min").wait()
            hi = comm.iallreduce(np.array([v, -v]), op="max").wait()
            return s, lo, hi

        for s, lo, hi in world.run(fn):
            assert s == 10.0 and lo == 1.0
            np.testing.assert_array_equal(hi, [4.0, -1.0])

    def test_iallreduce_rejects_bad_op_at_post_time(self):
        world = World(2)

        def fn(comm):
            with pytest.raises(ValueError, match="unknown reduction"):
                comm.iallreduce(1.0, op="prod")
            return True

        assert world.run(fn) == [True, True]

    def test_posting_rank_proceeds_without_waiting(self):
        # rank 0 posts, does "compute", and only then waits; rank 1 delays
        # its post — rank 0's post must return well before rank 1 arrives
        world = World(2)

        def fn(comm):
            if comm.rank == 0:
                t0 = time.perf_counter()
                req = comm.iallreduce(1.0, op="sum")
                post_time = time.perf_counter() - t0
                assert post_time < 0.05  # returned immediately
                assert not req.test()  # peer has not deposited yet
                total = req.wait()
                return total
            time.sleep(0.1)
            return comm.iallreduce(2.0, op="sum").wait()

        assert world.run(fn) == [3.0, 3.0]

    def test_sequence_matching_over_many_rounds(self):
        # collectives pair by per-rank posting order even when ranks run
        # far ahead of each other
        world = World(3)
        rounds = 10

        def fn(comm):
            reqs = [
                comm.iallreduce(float((k + 1) * (comm.rank + 1)), op="sum")
                for k in range(rounds)
            ]
            return [r.wait() for r in reqs]

        for got in world.run(fn):
            assert got == [float((k + 1) * 6) for k in range(rounds)]

    def test_collective_buffers_are_freed(self):
        world = World(2)

        def fn(comm):
            for _ in range(5):
                comm.iallreduce(1.0).wait()
            return True

        world.run(fn)
        assert world._icoll_bufs == {}


class TestAbortAndTimeout:
    def test_abort_propagates_to_pending_recv(self):
        # rank 1 dies; rank 0's in-flight irecv must observe the abort and
        # the reported failure must be the root cause, not the cascade
        world = World(2)

        def fn(comm):
            if comm.rank == 1:
                time.sleep(0.02)
                raise RuntimeError("boom")
            return comm.irecv(source=1).wait(timeout=30.0)

        with pytest.raises(CommError, match="rank 1 failed") as exc:
            world.run(fn)
        assert "boom" in str(exc.value)

    def test_abort_propagates_to_pending_collective(self):
        world = World(2)

        def fn(comm):
            if comm.rank == 1:
                raise RuntimeError("dead rank")
            return comm.iallreduce(1.0).wait(timeout=30.0)

        with pytest.raises(CommError, match="rank 1 failed"):
            world.run(fn)

    def test_hung_rank_raises_instead_of_returning_none(self):
        # regression: World.run used to join with a timeout but never check
        # is_alive(), silently returning None results for hung ranks;
        # the hang now surfaces as a typed RankFailure naming the rank
        world = World(2)

        def fn(comm):
            if comm.rank == 0:
                time.sleep(3.0)
            return comm.rank

        with pytest.raises(RankFailure, match="hung-rank timeout") as exc:
            world.run(fn, timeout=0.3)
        assert exc.value.rank == 0

    def test_recv_timeout_names_source_and_tag(self):
        world = World(2)

        def fn(comm):
            if comm.rank == 1:
                with pytest.raises(CommError, match=r"from 0 \(tag 9\)"):
                    comm.recv(source=0, tag=9, timeout=0.1)
            return True

        assert world.run(fn) == [True, True]


class TestPerRankStats:
    def test_wait_time_charged_to_the_waiting_rank(self):
        world = World(2)

        def fn(comm):
            if comm.rank == 0:
                time.sleep(0.15)
            comm.barrier()
            return None

        world.run(fn)
        waits = world.stats.wait_seconds
        # rank 1 sat in the barrier while rank 0 slept
        assert waits.get(1, 0.0) > 0.1
        assert waits.get(0, 0.0) < 0.1

    def test_bytes_attributed_per_rank(self):
        world = World(2)

        def fn(comm):
            payload = np.zeros(100 * (comm.rank + 1))
            comm.allgather(payload)
            if comm.rank == 0:
                comm.send(np.zeros(10), dest=1)
            else:
                comm.recv(source=0)
            return None

        world.run(fn)
        by_rank = world.stats.bytes_by_rank
        assert by_rank[0] >= 800 + 80  # allgather payload + p2p send
        assert by_rank[1] >= 1600  # bigger allgather payload, no send
        assert world.stats.p2p_messages == 1


class TestSimulatedFabric:
    """Wire-time model: transfers take latency + payload/bandwidth."""

    def test_blocking_collective_pays_wire_time_idle(self):
        world = World(2, latency_s=0.08)

        def fn(comm):
            t0 = time.perf_counter()
            total = comm.allreduce(1.0)
            return total, time.perf_counter() - t0

        for total, elapsed in world.run(fn):
            assert total == 2.0
            assert elapsed >= 0.08

    def test_nonblocking_collective_hides_wire_time_behind_compute(self):
        world = World(2, latency_s=0.08)

        def fn(comm):
            req = comm.iallreduce(1.0)
            time.sleep(0.12)  # stand-in for interior compute
            t0 = time.perf_counter()
            total = req.wait()
            return total, time.perf_counter() - t0

        for total, waited in world.run(fn):
            assert total == 2.0
            # transfer matured during the compute window
            assert waited < 0.05

    def test_message_invisible_until_transfer_completes(self):
        world = World(2, latency_s=0.1)

        def fn(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
                comm.barrier()
                return None
            req = comm.irecv(source=0)
            comm.barrier()  # sender has posted by now
            early = req.test()
            value = req.wait()
            return early, value

        early, value = world.run(fn)[1]
        assert value == "x"
        assert early is False  # still on the wire right after the post

    def test_bandwidth_term_scales_with_payload(self):
        # 0.01 GB/s: a 1 MB payload needs 0.1 s on the wire
        world = World(2, gb_per_s=0.01)

        def fn(comm):
            big = np.zeros(131072)  # 1 MiB of float64
            t0 = time.perf_counter()
            comm.allgather(big)
            big_t = time.perf_counter() - t0
            t0 = time.perf_counter()
            comm.allgather(1.0)
            small_t = time.perf_counter() - t0
            return big_t, small_t

        for big_t, small_t in world.run(fn):
            assert big_t >= 0.1
            assert small_t < 0.06

    def test_zero_cost_fabric_by_default(self):
        world = World(2)
        assert world._xfer_delay(10**9) == 0.0
