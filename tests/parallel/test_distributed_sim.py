"""Distributed simulation tests: rank-decomposed = serial, to roundoff."""

import numpy as np
import pytest

from repro.cosmology import PLANCK18, zeldovich_ics
from repro.parallel.distributed_sim import DistributedConfig, DistributedSimulation


@pytest.fixture(scope="module")
def ic_setup():
    box = 100.0
    n = 8
    ics = zeldovich_ics(n, box, PLANCK18, a_init=0.2, seed=17)
    mass = np.full(n**3, ics.particle_mass)
    return box, ics.positions, ics.velocities, mass


def make_config(box, **kw):
    # r_split of 1 grid cell keeps the short-range cutoff (~6.5 r_split
    # at the 1e-4 force tolerance) below half the narrowest rank domain
    # even at 8 ranks (50 Mpc/h wide)
    defaults = dict(
        box=box, pm_grid=32, a_init=0.2, a_final=0.3, n_pm_steps=2,
        cosmo=PLANCK18, r_split_cells=1.0,
    )
    defaults.update(kw)
    return DistributedConfig(**defaults)


class TestDistributedEqualsSerial:
    def test_two_ranks_match_one_rank(self, ic_setup):
        box, pos, vel, mass = ic_setup
        cfg = make_config(box)
        p1, v1, _ = DistributedSimulation(cfg, 1).run(pos, vel, mass)
        p2, v2, _ = DistributedSimulation(cfg, 2).run(pos, vel, mass)
        d = p1 - p2
        d -= box * np.round(d / box)
        assert np.abs(d).max() < 1e-8
        np.testing.assert_allclose(v1, v2, atol=1e-8)

    def test_eight_ranks_match_one_rank(self, ic_setup):
        box, pos, vel, mass = ic_setup
        cfg = make_config(box)
        p1, v1, _ = DistributedSimulation(cfg, 1).run(pos, vel, mass)
        p8, v8, _ = DistributedSimulation(cfg, 8).run(pos, vel, mass)
        d = p1 - p8
        d -= box * np.round(d / box)
        assert np.abs(d).max() < 1e-8
        np.testing.assert_allclose(v1, v8, atol=1e-8)

    def test_ids_preserved(self, ic_setup):
        box, pos, vel, mass = ic_setup
        cfg = make_config(box)
        _, _, ids = DistributedSimulation(cfg, 4).run(pos, vel, mass)
        np.testing.assert_array_equal(ids, np.arange(len(pos)))


class TestPhysicsSanity:
    def test_structure_grows(self, ic_setup):
        """Clustering increases over the run (gravity is attractive)."""
        from repro.core.gravity.pm import cic_deposit

        box, pos, vel, mass = ic_setup
        cfg = make_config(box, a_final=0.45, n_pm_steps=5)
        p_out, _, _ = DistributedSimulation(cfg, 4).run(pos, vel, mass)

        def rms(p):
            rho = cic_deposit(p, mass, 16, box)
            return (rho / rho.mean() - 1.0).std()

        assert rms(p_out) > rms(pos) * 1.2

    def test_momentum_roughly_conserved(self, ic_setup):
        box, pos, vel, mass = ic_setup
        # static (Newtonian) mode needs a *short* time span: cosmology-unit
        # masses give huge accelerations, and unbounded drift would blow up
        # the spatial structures (the chaining mesh guards against this)
        cfg = make_config(box, static=True, a_init=0.0, a_final=1.0e-5,
                          n_pm_steps=2)
        _, v_out, _ = DistributedSimulation(cfg, 2).run(pos, vel, mass)
        p_in = (mass[:, None] * vel).sum(axis=0)
        p_out = (mass[:, None] * v_out).sum(axis=0)
        scale = np.abs(mass[:, None] * v_out).sum() + 1e-30
        assert np.all(np.abs(p_out - p_in) < 1e-6 * scale)


class TestValidation:
    def test_too_many_ranks_rejected(self, ic_setup):
        box, *_ = ic_setup
        cfg = make_config(box)
        # 64 ranks on a 100 box -> 25-wide domains < 2x cutoff (~41)
        with pytest.raises(ValueError, match="cutoff"):
            DistributedSimulation(cfg, 64)
