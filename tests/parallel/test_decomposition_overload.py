"""Decomposition, overload exchange, and migration tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    World,
    build_overloaded_domains,
    exchange_overload,
    factor_ranks_3d,
    make_decomposition,
    migrate_particles,
)


class TestFactorization:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, {1}), (8, {2}), (27, {3}), (64, {4}), (12, {2, 3})],
    )
    def test_known_factorizations(self, n, expected):
        dims = factor_ranks_3d(n)
        assert np.prod(dims) == n
        assert set(dims) == expected

    @given(n=st.integers(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_property_product_and_balance(self, n):
        dims = factor_ranks_3d(n)
        assert int(np.prod(dims)) == n
        # no dimension should exceed n itself, and sorted aspect is minimal
        assert max(dims) <= n

    def test_invalid(self):
        with pytest.raises(ValueError):
            factor_ranks_3d(0)


class TestDecomposition:
    def test_rank_coords_roundtrip(self):
        d = make_decomposition(100.0, 12)
        for r in range(12):
            assert d.rank_of_coords(*d.coords_of(r)) == r

    def test_bounds_tile_box(self):
        d = make_decomposition(60.0, 8)
        vol = sum(np.prod(d.bounds(r)[1] - d.bounds(r)[0]) for r in range(8))
        assert vol == pytest.approx(60.0**3)

    def test_rank_of_positions_within_bounds(self):
        rng = np.random.default_rng(0)
        d = make_decomposition(50.0, 27)
        pos = rng.uniform(0, 50.0, (500, 3))
        ranks = d.rank_of_positions(pos)
        for r in np.unique(ranks):
            lo, hi = d.bounds(int(r))
            sel = pos[ranks == r]
            assert np.all(sel >= lo - 1e-12)
            assert np.all(sel <= hi + 1e-12)

    def test_overload_volume_fraction(self):
        d = make_decomposition(100.0, 8)  # 50-wide subdomains
        frac = d.overload_volume_fraction(5.0)
        assert frac == pytest.approx((60.0 / 50.0) ** 3 - 1.0)

    def test_out_of_range_rank(self):
        d = make_decomposition(10.0, 4)
        with pytest.raises(ValueError):
            d.coords_of(4)


class TestOverloadOracle:
    def test_every_particle_owned_once(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 40.0, (300, 3))
        d = make_decomposition(40.0, 8)
        domains = build_overloaded_domains(pos, d, overload_width=3.0)
        owned = np.concatenate([dom.owned_idx for dom in domains])
        assert sorted(owned.tolist()) == list(range(300))

    def test_ghosts_within_expanded_domain(self):
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 40.0, (400, 3))
        d = make_decomposition(40.0, 8)
        w = 4.0
        domains = build_overloaded_domains(pos, d, overload_width=w)
        for dom in domains:
            lo, hi = d.bounds(dom.rank)
            gp = pos[dom.ghost_idx] + dom.ghost_shift
            assert np.all(gp >= lo - w - 1e-9)
            assert np.all(gp < hi + w + 1e-9)

    def test_ghost_completeness(self):
        """Every particle within `w` of a rank's domain appears as owned or
        ghost on that rank (short-range locality guarantee)."""
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 30.0, (200, 3))
        d = make_decomposition(30.0, 8)
        w = 3.0
        domains = build_overloaded_domains(pos, d, overload_width=w)
        for dom in domains:
            lo, hi = d.bounds(dom.rank)
            # brute force: particles within w of the domain (periodic)
            close = []
            for i, p in enumerate(pos):
                dvec = np.zeros(3)
                for ax in range(3):
                    x = p[ax]
                    # periodic distance to the interval [lo, hi]
                    cands = []
                    for shift in (-30.0, 0.0, 30.0):
                        xs = x + shift
                        cands.append(max(lo[ax] - xs, 0.0, xs - hi[ax]))
                    dvec[ax] = min(cands)
                if np.all(dvec < w):
                    close.append(i)
            present = set(dom.owned_idx.tolist()) | set(dom.ghost_idx.tolist())
            assert set(close).issubset(present)

    def test_width_validation(self):
        pos = np.random.default_rng(4).uniform(0, 10, (20, 3))
        d = make_decomposition(10.0, 27)  # 3.33-wide domains
        with pytest.raises(ValueError):
            build_overloaded_domains(pos, d, overload_width=2.0)
        with pytest.raises(ValueError):
            build_overloaded_domains(pos, d, overload_width=-1.0)

    def test_overload_fraction_grows_with_width(self):
        rng = np.random.default_rng(5)
        pos = rng.uniform(0, 40.0, (2000, 3))
        d = make_decomposition(40.0, 8)
        f1 = np.mean(
            [dom.overload_fraction
             for dom in build_overloaded_domains(pos, d, 2.0)]
        )
        f2 = np.mean(
            [dom.overload_fraction
             for dom in build_overloaded_domains(pos, d, 6.0)]
        )
        assert f2 > f1


class TestCommunicatingExchange:
    def test_exchange_matches_oracle(self):
        rng = np.random.default_rng(6)
        n, box, n_ranks, w = 240, 40.0, 8, 3.5
        pos = rng.uniform(0, box, (n, 3))
        d = make_decomposition(box, n_ranks)
        oracle = build_overloaded_domains(pos, d, w)
        owner = d.rank_of_positions(pos)
        ids = np.arange(n)

        def fn(comm):
            mine = owner == comm.rank
            gp, gids = exchange_overload(comm, pos[mine], ids[mine], d, w)
            return set(gids.tolist())

        world = World(n_ranks)
        results = world.run(fn)
        for dom, got in zip(oracle, results):
            assert got == set(dom.ghost_idx.tolist())

    def test_migration_rehomes_everyone(self):
        rng = np.random.default_rng(7)
        n, box, n_ranks = 160, 20.0, 8
        pos = rng.uniform(0, box, (n, 3))
        d = make_decomposition(box, n_ranks)
        owner = d.rank_of_positions(pos)
        ids = np.arange(n)
        # drift particles randomly (some cross boundaries)
        drift = rng.normal(0, 2.0, (n, 3))
        new_pos_global = np.mod(pos + drift, box)

        def fn(comm):
            mine = owner == comm.rank
            p, payload = migrate_particles(
                comm, new_pos_global[mine], {"ids": ids[mine]}, d
            )
            # everything I now hold belongs to me
            assert np.all(d.rank_of_positions(p) == comm.rank)
            return payload["ids"]

        world = World(n_ranks)
        results = world.run(fn)
        all_ids = np.concatenate(results)
        assert sorted(all_ids.tolist()) == list(range(n))
