"""Distributed CRKSPH: hydro forces stay node-local across ranks.

Geometry note: with frozen support h the ghost region must span 2h (the
interacting ghosts plus *their* CRK neighborhoods), so a rank domain must
be wider than 4h.  Tests size their boxes accordingly.
"""

import numpy as np
import pytest

from repro.cosmology import PLANCK18
from repro.parallel.distributed_sim import DistributedConfig, DistributedSimulation


def uniform_gas(n_per_dim, box, u0=2000.0, jitter=0.25, seed=13):
    rng = np.random.default_rng(seed)
    spacing = box / n_per_dim
    coords = (np.arange(n_per_dim) + 0.5) * spacing
    g = np.meshgrid(coords, coords, coords, indexing="ij")
    pos = np.stack([c.ravel() for c in g], axis=-1)
    pos = np.mod(pos + rng.uniform(-jitter, jitter, pos.shape) * spacing, box)
    n = len(pos)
    vel = rng.normal(0, 20.0, (n, 3))
    mass = np.full(n, 1.0e10)
    u = np.full(n, u0) * rng.uniform(0.8, 1.2, n)
    return pos, vel, mass, u, spacing


def make_config(box, sph_h, **kw):
    defaults = dict(
        box=box, pm_grid=16, a_init=0.5, a_final=0.52, n_pm_steps=1,
        cosmo=PLANCK18, hydro=True, gravity=False, sph_h=sph_h,
    )
    defaults.update(kw)
    return DistributedConfig(**defaults)


@pytest.fixture(scope="module")
def gas_state():
    box, n = 120.0, 14
    pos, vel, mass, u, spacing = uniform_gas(n, box)
    h = 1.6 * spacing  # ~17 neighbors: enough for a communication test
    return box, pos, vel, mass, u, h


class TestDistributedHydro:
    def test_two_ranks_match_single_rank(self, gas_state):
        box, pos, vel, mass, u, h = gas_state
        cfg = make_config(box, h)
        p1, v1, u1, _ = DistributedSimulation(cfg, 1).run(pos, vel, mass, u)
        p2, v2, u2, _ = DistributedSimulation(cfg, 2).run(pos, vel, mass, u)
        d = p1 - p2
        d -= box * np.round(d / box)
        assert np.abs(d).max() < 1e-8
        np.testing.assert_allclose(v1, v2, atol=1e-8)
        np.testing.assert_allclose(u1, u2, atol=1e-8)

    @pytest.mark.slow
    def test_eight_ranks_match(self, gas_state):
        box, pos, vel, mass, u, h = gas_state
        # 8 ranks need domains > 4h: rescale the same state to a 240 box
        scale = 2.0
        cfg = make_config(box * scale, h * scale)
        p1, v1, u1, _ = DistributedSimulation(cfg, 1).run(
            pos * scale, vel, mass, u
        )
        p8, v8, u8, _ = DistributedSimulation(cfg, 8).run(
            pos * scale, vel, mass, u
        )
        d = p1 - p8
        d -= box * scale * np.round(d / (box * scale))
        assert np.abs(d).max() < 1e-8
        np.testing.assert_allclose(u1, u8, atol=1e-8)

    def test_energy_exchange_conservative_across_ranks(self, gas_state):
        """Total kinetic + internal energy drift is pure second-order
        integration error (halving dt cuts it ~4x) — a rank-boundary leak
        would neither be this small nor converge away."""
        box, pos, vel, mass, u, h = gas_state
        e_in = (0.5 * mass * (vel**2).sum(1) + mass * u).sum()
        drifts = {}
        for dt in (2.0e-2, 1.0e-2):
            cfg = make_config(box, h, static=True, a_init=0.0, a_final=dt,
                              n_pm_steps=2)
            _, v2, u2, _ = DistributedSimulation(cfg, 2).run(
                pos, vel, mass, u
            )
            e_out = (0.5 * mass * (v2**2).sum(1) + mass * u2).sum()
            drifts[dt] = abs(e_out - e_in) / e_in
        assert drifts[2.0e-2] < 1e-2
        assert drifts[1.0e-2] < 0.4 * drifts[2.0e-2]  # ~2nd order

    def test_hydro_requires_u_and_h(self, gas_state):
        box, pos, vel, mass, u, h = gas_state
        with pytest.raises(ValueError, match="sph_h"):
            make_config(box, 0.0)
        cfg = make_config(box, h)
        with pytest.raises(Exception, match="internal energies"):
            DistributedSimulation(cfg, 1).run(pos, vel, mass)
