"""Distributed rung subcycling + nonblocking migration regression tests.

Pins the tentpole invariants of the rung-pipelined distributed driver:

- active-set overlap runs are *bit-identical* to full-evaluation blocking
  runs on the same rung schedule (gravity and hydro, with and without
  simulated fabric latency, with the runtime sanitizers armed);
- distributed ``StepRecord``/``SubcycleStats`` are honest — the claimed
  schedule matches what the serial :class:`HierarchicalIntegrator`
  executes for the same rung multiset, and flat runs still report
  ``n_substeps=1``;
- the two-wave nonblocking migration hides wire time (overlap migration
  wait shrinks vs blocking under latency) and cancels cleanly on an
  abort path (no leaked requests for the comm sanitizer).
"""

import numpy as np
import pytest

from repro.core.timestep import HierarchicalIntegrator
from repro.cosmology import PLANCK18
from repro.parallel.comm import CommError
from repro.parallel.distributed_sim import (
    DistributedConfig,
    DistributedSimulation,
)

BOX = 120.0


def _clustered_ics(seed=7, n_side=4, n_blob=24, blob_mass=2.0e12):
    """Jittered DM grid plus a tight heavy clump: the clump's mutual
    accelerations push its particles onto deep rungs while the background
    stays on rung 0 — the rung-imbalanced layout subcycling targets."""
    rng = np.random.default_rng(seed)
    g = (np.arange(n_side) + 0.5) * BOX / n_side
    grid = np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1)
    dm = np.mod(grid.reshape(-1, 3) + rng.normal(0, 1.0, (n_side**3, 3)),
                BOX)
    blob = 75.0 + 0.5 * rng.standard_normal((n_blob, 3))
    pos = np.vstack([dm, blob])
    vel = rng.normal(0, 25.0, pos.shape)
    mass = np.full(len(pos), 1.0e10)
    mass[len(dm):] = blob_mass
    return pos, vel, mass


def _config(comm_mode, active_set, subcycle=True, latency=0.0,
            sanitize=False, **kw):
    return DistributedConfig(
        box=BOX, pm_grid=32, a_init=0.3, a_final=0.34, n_pm_steps=2,
        cosmo=PLANCK18, r_split_cells=1.0, comm_mode=comm_mode,
        subcycle=subcycle, active_set=active_set, max_rung=3,
        net_latency_s=latency, sanitize=sanitize, **kw,
    )


def _run(cfg, n_ranks, ics):
    pos, vel, mass = ics
    sim = DistributedSimulation(cfg, n_ranks)
    out = sim.run(pos.copy(), vel.copy(), mass.copy())
    return out, sim


@pytest.mark.parametrize("latency", [0.0, 0.02])
def test_subcycled_overlap_bit_identical_gravity(latency):
    """Active-set overlap == full-evaluation blocking, bit for bit.

    The overlap run pipelines deep-rung evaluations over the in-flight
    exchanges and migrates nonblocking in two waves; the blocking
    reference evaluates every particle every substep and migrates with
    serial alltoallvs.  Same rung schedule -> same bits.  The sanitized
    variant must finish with zero comm/numerics findings.
    """
    ics = _clustered_ics()
    (p1, v1, _), s1 = _run(
        _config("overlap", True, latency=latency, sanitize=True), 4, ics
    )
    (p2, v2, _), s2 = _run(
        _config("blocking", False, latency=latency), 4, ics
    )
    assert np.array_equal(p1, p2)
    assert np.array_equal(v1, v2)
    assert s1.world.sanitizer.findings == []
    # the clustered ICs actually exercised deep rungs
    assert s1.step_records[0].deepest_rung >= 2
    assert s1.step_records[0].n_substeps >= 4


def test_subcycled_bit_identical_hydro():
    """Mixed DM+gas: the hydro active-set path matches bitwise too."""
    rng = np.random.default_rng(3)
    pos, vel, mass = _clustered_ics(seed=3)
    gas = np.zeros(len(pos), dtype=bool)
    gas[-24:] = True
    u = np.full(len(pos), 1.0e4)

    def run(mode, active_set):
        cfg = _config(mode, active_set, hydro=True, sph_h=6.0,
                      sanitize=(mode == "overlap"))
        sim = DistributedSimulation(cfg, 2)
        return sim.run(pos.copy(), vel.copy(), mass.copy(),
                       u=u.copy(), gas=gas.copy()), sim

    (p1, v1, u1, _), s1 = run("overlap", True)
    (p2, v2, u2, _), s2 = run("blocking", False)
    assert np.array_equal(p1, p2)
    assert np.array_equal(v1, v2)
    assert np.array_equal(u1, u2)
    assert s1.world.sanitizer.findings == []


def test_step_record_honesty_vs_serial_integrator():
    """The schedule a distributed record claims matches the schedule the
    serial integrator executes for the same rung multiset.

    ``SubcycleStats.rung_counts`` carries the global rung histogram; the
    substep schedule (substep count, evaluation count, active totals) is
    a pure function of that multiset, so rebuilding the rungs and running
    :class:`HierarchicalIntegrator` over a trivial force must reproduce
    every bookkeeping number the distributed run reported.
    """
    ics = _clustered_ics()
    (_, _, _), sim = _run(_config("overlap", True), 4, ics)
    da = (0.34 - 0.3) / 2
    for rec in sim.step_records:
        stats = rec.subcycle
        assert stats is not None
        assert rec.n_substeps == stats.n_substeps == 2**rec.deepest_rung
        assert rec.deepest_rung == stats.deepest_rung
        assert stats.n_particles == len(ics[0])
        assert sum(stats.rung_counts) == stats.n_particles

        rungs = np.repeat(
            np.arange(len(stats.rung_counts)), stats.rung_counts
        ).astype(np.int16)
        n = len(rungs)
        ref = HierarchicalIntegrator(da, max_rung=3).run(
            np.zeros((n, 3)), np.zeros((n, 3)), rungs,
            force_fn=lambda p, v, idx: np.zeros_like(p),
        )
        assert stats.n_substeps == ref.n_substeps
        assert stats.n_force_evaluations == ref.n_force_evaluations
        assert stats.n_active_total == ref.n_active_total
        assert stats.deepest_rung == ref.deepest_rung


def test_flat_mode_reports_single_substep():
    ics = _clustered_ics()
    (_, _, _), sim = _run(_config("overlap", True, subcycle=False), 4, ics)
    for rec in sim.step_records:
        assert rec.n_substeps == 1
        assert rec.deepest_rung == 0
        assert rec.subcycle is None


def test_nonblocking_migration_hides_wire_time():
    """Under fabric latency the overlap driver's migration wait collapses:
    wave 1 matures behind the closing evaluation, wave 2 behind the next
    opening, while blocking mode pays every alltoallv's latency idle."""
    ics = _clustered_ics()
    latency = 0.02

    def mig_wait(sim):
        return sum(r.comm_wait.get("migration", 0.0)
                   for r in sim.step_records)

    _, ovl = _run(_config("overlap", True, latency=latency), 4, ics)
    _, blk = _run(_config("blocking", True, latency=latency), 4, ics)
    assert mig_wait(blk) > 0
    assert mig_wait(ovl) < 0.5 * mig_wait(blk)

    # flat mode uses the same two-wave machinery
    _, fovl = _run(
        _config("overlap", True, subcycle=False, latency=latency), 4, ics
    )
    _, fblk = _run(
        _config("blocking", True, subcycle=False, latency=latency), 4, ics
    )
    assert mig_wait(fovl) < 0.5 * mig_wait(fblk)


def test_abort_cancels_in_flight_migration(monkeypatch):
    """A mid-step failure between the migration waves leaves no leaked
    requests: the abort path cancels both waves, so every request record
    the comm sanitizer tracked is settled."""
    from repro.sanitize.numerics import NumericsSanitizer

    ics = _clustered_ics()

    real = NumericsSanitizer.check_energy

    def tripwire(self, step, energy):
        # fires after the closing kick of step 1, i.e. with migration
        # wave 1 and wave 2 posted but not settled
        if step >= 1:
            raise FloatingPointError("injected tripwire")
        return real(self, step, energy)

    monkeypatch.setattr(NumericsSanitizer, "check_energy", tripwire)
    sim = DistributedSimulation(
        _config("overlap", True, sanitize=True), 4, observe=None
    )
    pos, vel, mass = ics
    with pytest.raises(CommError):
        sim.run(pos.copy(), vel.copy(), mass.copy())
    records = sim.world.sanitizer._records
    assert records, "sanitizer saw no requests"
    assert all(rec.settled for rec in records)
