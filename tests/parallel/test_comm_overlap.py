"""Overlap mode is bit-identical to blocking: FFT pipeline + full driver."""

import numpy as np
import pytest

from repro.cosmology import PLANCK18, zeldovich_ics
from repro.parallel import DistributedFFT, World, scatter_slabs, slab_bounds
from repro.parallel.distributed_sim import DistributedConfig, DistributedSimulation


class TestPipelinedFFT:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3])
    def test_forward_inverse_bitidentical_to_blocking(self, n_ranks):
        n = 12
        rng = np.random.default_rng(5)
        field = rng.standard_normal((n, n, n)) + 1j * rng.standard_normal(
            (n, n, n)
        )
        slabs = scatter_slabs(field, n_ranks)

        def fn(comm):
            blk = DistributedFFT(comm, n, mode="blocking")
            ovl = DistributedFFT(comm, n, mode="overlap", n_stages=3)
            s_blk = blk.forward(slabs[comm.rank].copy())
            s_ovl = ovl.forward(slabs[comm.rank].copy())
            assert np.array_equal(s_blk, s_ovl)
            r_blk = blk.inverse(s_blk)
            r_ovl = ovl.inverse(s_ovl)
            assert np.array_equal(r_blk, r_ovl)
            return s_ovl, r_ovl

        results = World(n_ranks).run(fn)
        spec = np.concatenate([r[0] for r in results], axis=1)
        np.testing.assert_allclose(spec, np.fft.fftn(field), atol=1e-9)
        recon = np.concatenate([r[1] for r in results], axis=0)
        np.testing.assert_allclose(recon, field, atol=1e-12)

    def test_pipeline_deeper_than_grid_clamps(self):
        n = 4

        def fn(comm):
            fft = DistributedFFT(comm, n, mode="overlap", n_stages=9)
            f = np.arange(n**3, dtype=complex).reshape(n, n, n)
            xs, xe = slab_bounds(n, comm.size, comm.rank)
            return fft.forward(f[xs:xe])

        got = np.concatenate(World(2).run(fn), axis=1)
        f = np.arange(n**3, dtype=complex).reshape(n, n, n)
        np.testing.assert_allclose(got, np.fft.fftn(f), atol=1e-10)


def _mixed_ics(box=120.0, n=8, seed=3):
    """Interleaved DM + gas grids with small random perturbations."""
    rng = np.random.default_rng(seed)
    g = (np.arange(n) + 0.5) * box / n
    grid = np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1).reshape(-1, 3)
    dm = np.mod(grid + rng.normal(0, 0.8, grid.shape), box)
    gas_pos = np.mod(grid + box / (2 * n) + rng.normal(0, 0.8, grid.shape), box)
    pos = np.vstack([dm, gas_pos])
    vel = rng.normal(0, 20.0, pos.shape)
    mass = np.full(len(pos), 1.0e10)
    u = np.full(len(pos), 1.0e4)
    gas = np.zeros(len(pos), dtype=bool)
    gas[len(dm):] = True
    return pos, vel, mass, u, gas


def _mixed_config(box=120.0, **kw):
    defaults = dict(
        box=box, pm_grid=32, a_init=0.3, a_final=0.32, n_pm_steps=1,
        cosmo=PLANCK18, r_split_cells=1.0, hydro=True,
        sph_h=1.6 * box / 14,
    )
    defaults.update(kw)
    return DistributedConfig(**defaults)


class TestOverlapBitIdentity:
    def test_mixed_dm_gas_overlap_equals_blocking(self):
        """The acceptance check: a multi-rank mixed DM+gas step under
        comm_mode="overlap" is bitwise identical to "blocking"."""
        pos, vel, mass, u, gas = _mixed_ics()
        out = {}
        for mode in ("blocking", "overlap"):
            cfg = _mixed_config(comm_mode=mode)
            sim = DistributedSimulation(cfg, 2)
            out[mode] = sim.run(pos, vel, mass, u=u, gas=gas)
        for a, b, name in zip(out["blocking"], out["overlap"],
                              ("pos", "vel", "u", "ids")):
            assert np.array_equal(a, b), f"{name} differs between comm modes"

    def test_gravity_only_overlap_equals_blocking_four_ranks(self):
        box = 100.0
        ics = zeldovich_ics(8, box, PLANCK18, a_init=0.2, seed=17)
        mass = np.full(8**3, ics.particle_mass)
        out = {}
        for mode in ("blocking", "overlap"):
            cfg = DistributedConfig(
                box=box, pm_grid=32, a_init=0.2, a_final=0.3, n_pm_steps=2,
                cosmo=PLANCK18, r_split_cells=1.0, comm_mode=mode,
            )
            out[mode] = DistributedSimulation(cfg, 4).run(
                ics.positions, ics.velocities, mass
            )
        for a, b in zip(out["blocking"], out["overlap"]):
            assert np.array_equal(a, b)

    def test_bit_identity_survives_fabric_latency(self):
        """A nonzero simulated wire time only delays transfers — the
        overlap/blocking outputs stay bitwise identical, and blocking
        spends strictly more rank-time waiting on the same traffic."""
        pos, vel, mass, u, gas = _mixed_ics()
        out, waits = {}, {}
        for mode in ("blocking", "overlap"):
            cfg = _mixed_config(comm_mode=mode, net_latency_s=0.02)
            sim = DistributedSimulation(cfg, 2)
            out[mode] = sim.run(pos, vel, mass, u=u, gas=gas)
            waits[mode] = sum(sim.traffic.wait_seconds.values())
        for a, b, name in zip(out["blocking"], out["overlap"],
                              ("pos", "vel", "u", "ids")):
            assert np.array_equal(a, b), f"{name} differs between comm modes"
        assert waits["overlap"] < waits["blocking"]

    def test_overlap_matches_serial_reference(self):
        """Overlap at 2 ranks still matches 1 rank to roundoff (the
        original distributed-equals-serial contract survives the split)."""
        box = 100.0
        ics = zeldovich_ics(8, box, PLANCK18, a_init=0.2, seed=17)
        mass = np.full(8**3, ics.particle_mass)
        cfg1 = DistributedConfig(
            box=box, pm_grid=32, a_init=0.2, a_final=0.3, n_pm_steps=2,
            cosmo=PLANCK18, r_split_cells=1.0,
        )
        cfg2 = DistributedConfig(
            box=box, pm_grid=32, a_init=0.2, a_final=0.3, n_pm_steps=2,
            cosmo=PLANCK18, r_split_cells=1.0, comm_mode="overlap",
        )
        p1, v1, _ = DistributedSimulation(cfg1, 1).run(
            ics.positions, ics.velocities, mass
        )
        p2, v2, _ = DistributedSimulation(cfg2, 2).run(
            ics.positions, ics.velocities, mass
        )
        d = p1 - p2
        d -= box * np.round(d / box)
        assert np.abs(d).max() < 1e-8
        np.testing.assert_allclose(v1, v2, atol=1e-8)


class TestInstrumentation:
    def test_step_records_carry_comm_wait_and_mode(self):
        pos, vel, mass, u, gas = _mixed_ics()
        cfg = _mixed_config(comm_mode="overlap")
        sim = DistributedSimulation(cfg, 2)
        sim.run(pos, vel, mass, u=u, gas=gas)
        assert len(sim.step_records) == cfg.n_pm_steps
        rec = sim.step_records[0]
        assert rec.comm_mode == "overlap"
        assert set(rec.comm_wait) == {"short_range", "long_range", "migration"}
        assert all(w >= 0.0 for w in rec.comm_wait.values())
        assert set(rec.timers) == set(rec.comm_wait)
        # comm wait is a portion of the phase wall time, never more
        for phase, wall in rec.timers.items():
            assert rec.comm_wait[phase] <= wall + 1e-9

    def test_traffic_stats_have_per_rank_counters(self):
        pos, vel, mass, u, gas = _mixed_ics()
        cfg = _mixed_config()
        sim = DistributedSimulation(cfg, 2)
        sim.run(pos, vel, mass, u=u, gas=gas)
        assert sim.traffic is not None
        assert set(sim.traffic.bytes_by_rank) == {0, 1}
        assert all(b > 0 for b in sim.traffic.bytes_by_rank.values())
        assert all(w >= 0.0 for w in sim.traffic.wait_seconds.values())
