"""Simulated MPI communicator tests."""

import numpy as np
import pytest

from repro.parallel import CommError, World


class TestCollectives:
    def test_barrier_and_size(self):
        world = World(4)

        def fn(comm):
            comm.barrier()
            return comm.size

        assert world.run(fn) == [4, 4, 4, 4]

    def test_bcast(self):
        world = World(3)

        def fn(comm):
            data = {"x": 42} if comm.rank == 1 else None
            return comm.bcast(data, root=1)

        assert world.run(fn) == [{"x": 42}] * 3

    def test_gather(self):
        world = World(4)

        def fn(comm):
            return comm.gather(comm.rank**2, root=0)

        res = world.run(fn)
        assert res[0] == [0, 1, 4, 9]
        assert res[1] is None

    def test_allgather(self):
        world = World(3)
        res = world.run(lambda c: c.allgather(c.rank))
        assert res == [[0, 1, 2]] * 3

    def test_scatter(self):
        world = World(3)

        def fn(comm):
            vals = [10, 20, 30] if comm.rank == 0 else None
            return comm.scatter(vals, root=0)

        assert world.run(fn) == [10, 20, 30]

    def test_scatter_wrong_length_raises(self):
        world = World(2)

        def fn(comm):
            vals = [1] if comm.rank == 0 else None
            return comm.scatter(vals, root=0)

        with pytest.raises(CommError):
            world.run(fn)

    def test_allreduce_sum_scalar(self):
        world = World(5)
        res = world.run(lambda c: c.allreduce(c.rank + 1))
        assert res == [15] * 5

    def test_allreduce_sum_arrays(self):
        world = World(3)

        def fn(comm):
            return comm.allreduce(np.full(4, comm.rank, dtype=float))

        for out in world.run(fn):
            np.testing.assert_allclose(out, 3.0)

    def test_allreduce_minmax(self):
        world = World(4)
        assert world.run(lambda c: c.allreduce(c.rank, op="min")) == [0] * 4
        assert world.run(lambda c: c.allreduce(c.rank, op="max")) == [3] * 4

    def test_allreduce_unknown_op(self):
        world = World(2)
        with pytest.raises(CommError):
            world.run(lambda c: c.allreduce(1, op="prod"))

    def test_reduce_root_only(self):
        world = World(3)
        res = world.run(lambda c: c.reduce(1, root=2))
        assert res == [None, None, 3]

    def test_alltoall(self):
        world = World(3)

        def fn(comm):
            outgoing = [comm.rank * 10 + d for d in range(comm.size)]
            return comm.alltoall(outgoing)

        res = world.run(fn)
        # rank r receives src*10 + r from each src
        for r in range(3):
            assert res[r] == [0 * 10 + r, 1 * 10 + r, 2 * 10 + r]

    def test_alltoallv_arrays(self):
        world = World(2)

        def fn(comm):
            out = [
                np.full(d + 1, comm.rank, dtype=np.int64) for d in range(comm.size)
            ]
            got = comm.alltoallv(out)
            return np.concatenate(got)

        res = world.run(fn)
        np.testing.assert_array_equal(np.sort(res[0]), [0, 1])
        np.testing.assert_array_equal(np.sort(res[1]), [0, 0, 1, 1])

    def test_collective_ordering_many_rounds(self):
        """Repeated collectives stay in lockstep (no slot corruption)."""
        world = World(4)

        def fn(comm):
            acc = 0
            for i in range(20):
                acc += comm.allreduce(comm.rank * i)
            return acc

        res = world.run(fn)
        expected = sum(i * (0 + 1 + 2 + 3) for i in range(20))
        assert res == [expected] * 4


class TestPointToPoint:
    def test_send_recv(self):
        world = World(2)

        def fn(comm):
            if comm.rank == 0:
                comm.send("hello", dest=1)
                return None
            return comm.recv(source=0)

        assert world.run(fn)[1] == "hello"

    def test_ring_exchange(self):
        world = World(4)

        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        assert world.run(fn) == [3, 0, 1, 2]

    def test_numpy_payload(self):
        world = World(2)

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(5), dest=1)
                return None
            return comm.recv(source=0)

        np.testing.assert_array_equal(world.run(fn)[1], np.arange(5))


class TestWorld:
    def test_single_rank(self):
        world = World(1)
        assert world.run(lambda c: c.allreduce(7)) == [7]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            World(0)

    def test_rank_failure_propagates(self):
        world = World(3)

        def fn(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()
            return 1

        with pytest.raises(CommError, match="rank 1"):
            world.run(fn)

    def test_traffic_stats_counted(self):
        world = World(2)
        world.run(lambda c: c.allreduce(np.zeros(100)))
        assert world.stats.collective_calls >= 2
        assert world.stats.collective_bytes >= 800
