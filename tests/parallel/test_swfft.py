"""Distributed FFT (SWFFT analog) tests against numpy.fft."""

import numpy as np
import pytest

from repro.parallel import (
    DistributedFFT,
    World,
    gather_slabs,
    scatter_slabs,
    slab_bounds,
)


def run_forward(field, n_ranks):
    """Distributed forward FFT of a global field; returns global spectrum."""
    n = field.shape[0]
    slabs = scatter_slabs(field, n_ranks)

    def fn(comm):
        fft = DistributedFFT(comm, n)
        return fft.forward(slabs[comm.rank])

    world = World(n_ranks)
    out = world.run(fn)
    # forward output is y-slab layout: (n, y_local, n) per rank
    return np.concatenate(out, axis=1)


class TestSlabBounds:
    def test_even_split(self):
        assert [slab_bounds(8, 4, r) for r in range(4)] == [
            (0, 2), (2, 4), (4, 6), (6, 8),
        ]

    def test_uneven_split_covers_everything(self):
        bounds = [slab_bounds(10, 3, r) for r in range(3)]
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        for (s0, e0), (s1, e1) in zip(bounds, bounds[1:]):
            assert e0 == s1

    def test_scatter_gather_roundtrip(self):
        rng = np.random.default_rng(0)
        field = rng.normal(size=(9, 9, 9))
        np.testing.assert_array_equal(
            gather_slabs(scatter_slabs(field, 4)), field
        )


class TestDistributedFFT:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_forward_matches_numpy(self, n_ranks):
        rng = np.random.default_rng(1)
        n = 8
        field = rng.normal(size=(n, n, n))
        spec = run_forward(field, n_ranks)
        np.testing.assert_allclose(spec, np.fft.fftn(field), atol=1e-10)

    def test_forward_uneven_slabs(self):
        rng = np.random.default_rng(2)
        n = 10
        field = rng.normal(size=(n, n, n))
        spec = run_forward(field, 3)
        np.testing.assert_allclose(spec, np.fft.fftn(field), atol=1e-10)

    def test_roundtrip_identity(self):
        rng = np.random.default_rng(3)
        n, n_ranks = 8, 4
        field = rng.normal(size=(n, n, n))
        slabs = scatter_slabs(field, n_ranks)

        def fn(comm):
            fft = DistributedFFT(comm, n)
            spec = fft.forward(slabs[comm.rank])
            return fft.inverse(spec)

        world = World(n_ranks)
        out = world.run(fn)
        recon = np.concatenate(out, axis=0).real
        np.testing.assert_allclose(recon, field, atol=1e-12)

    def test_distributed_poisson_matches_serial(self):
        """Green's-function application agrees with the serial PM solve."""
        rng = np.random.default_rng(4)
        n, box, n_ranks = 8, 4.0, 2
        rho = rng.normal(1.0, 0.1, size=(n, n, n))
        coeff = 4.0 * np.pi
        slabs = scatter_slabs(rho - rho.mean(), n_ranks)

        def fn(comm):
            fft = DistributedFFT(comm, n)
            spec = fft.forward(slabs[comm.rank])
            spec = fft.poisson_greens(spec, box, coeff)
            return fft.inverse(spec)

        world = World(n_ranks)
        phi = np.concatenate(world.run(fn), axis=0).real

        # serial reference (full-complex FFT, same convention)
        dk = 2 * np.pi / box
        k1 = np.fft.fftfreq(n, d=1.0 / n) * dk
        k2 = (
            k1[:, None, None] ** 2 + k1[None, :, None] ** 2 + k1[None, None, :] ** 2
        )
        g = np.zeros_like(k2)
        g[k2 > 0] = -coeff / k2[k2 > 0]
        ref = np.fft.ifftn(g * np.fft.fftn(rho - rho.mean())).real
        np.testing.assert_allclose(phi, ref, atol=1e-12)

    def test_grid_too_small(self):
        world = World(4)

        def fn(comm):
            DistributedFFT(comm, 2)

        with pytest.raises(Exception, match="grid too small"):
            world.run(fn)
