"""Simulation driver configuration and edge-case tests."""

import numpy as np
import pytest

from repro.core.particles import Particles, Species
from repro.core.simulation import Simulation, SimulationConfig
from repro.cosmology import PLANCK18


def gas_cube(n=27, box=10.0, seed=0):
    rng = np.random.default_rng(seed)
    return Particles(
        pos=rng.uniform(0, box, (n, 3)),
        vel=np.zeros((n, 3)),
        mass=np.full(n, 1e9),
        species=np.full(n, int(Species.GAS), dtype=np.int8),
        u=np.full(n, 50.0),
    )


class TestConfig:
    def test_box_array_scalar(self):
        cfg = SimulationConfig(box=5.0)
        np.testing.assert_array_equal(cfg.box_array, [5.0, 5.0, 5.0])
        assert cfg.is_cubic
        assert cfg.box_volume == pytest.approx(125.0)

    def test_box_array_anisotropic(self):
        cfg = SimulationConfig(box=(4.0, 1.0, 1.0), gravity=False)
        assert not cfg.is_cubic
        assert cfg.box_min == 1.0
        assert cfg.box_volume == pytest.approx(4.0)

    def test_gravity_requires_cubic_box(self):
        cfg = SimulationConfig(box=(4.0, 1.0, 1.0), gravity=True)
        with pytest.raises(ValueError, match="cubic"):
            Simulation(cfg, gas_cube())

    def test_split_scales_follow_min_dimension(self):
        cfg = SimulationConfig(box=(8.0, 2.0, 2.0), pm_grid=16, gravity=False)
        assert cfg.r_split == pytest.approx(2.0 * 2.0 / 16)

    def test_cutoff_exceeds_split(self):
        cfg = SimulationConfig(box=10.0, pm_grid=16)
        assert cfg.cutoff > 4.0 * cfg.r_split


class TestFixedH:
    def test_fixed_h_preserves_user_values(self):
        parts = gas_cube()
        parts.h[:] = 1.23
        cfg = SimulationConfig(box=10.0, gravity=False, fixed_h=True,
                               a_init=0.5, a_final=0.51, n_pm_steps=1,
                               max_rung=0)
        sim = Simulation(cfg, parts)
        np.testing.assert_allclose(sim.particles.h[sim.particles.gas], 1.23)
        sim.run(1)
        np.testing.assert_allclose(sim.particles.h[sim.particles.gas], 1.23)

    def test_adaptive_h_changes(self):
        parts = gas_cube()
        cfg = SimulationConfig(box=10.0, gravity=False, fixed_h=False,
                               a_init=0.5, a_final=0.51, n_pm_steps=1,
                               max_rung=0, n_neighbors=12)
        sim = Simulation(cfg, parts)
        h0 = sim.particles.h[sim.particles.gas].copy()
        assert np.all(h0 > 0)  # initialized from volumes


class TestDriverEdges:
    def test_dm_only_runs_without_hydro_state(self):
        n = 27
        rng = np.random.default_rng(1)
        parts = Particles(
            pos=rng.uniform(0, 10, (n, 3)),
            vel=np.zeros((n, 3)),
            mass=np.full(n, 1e10),
            species=np.zeros(n, dtype=np.int8),
        )
        cfg = SimulationConfig(box=10.0, pm_grid=8, a_init=0.5, a_final=0.52,
                               n_pm_steps=1, hydro=True, max_rung=1)
        sim = Simulation(cfg, parts)  # hydro on but no gas: must not crash
        rec = sim.pm_step()
        assert rec.n_particles == n
        assert np.all(np.isfinite(sim.particles.pos))

    def test_history_and_fraction_accounting(self):
        parts = gas_cube()
        cfg = SimulationConfig(box=10.0, pm_grid=8, a_init=0.5, a_final=0.54,
                               n_pm_steps=2, max_rung=1)
        sim = Simulation(cfg, parts)
        sim.run()
        assert len(sim.history) == 2
        fr = sim.timing_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in fr.values())

    def test_rung_margin_zero_disables_promotion_depth(self):
        parts = gas_cube()
        cfg = SimulationConfig(box=10.0, pm_grid=8, a_init=0.5, a_final=0.52,
                               n_pm_steps=1, max_rung=0, rung_margin=0,
                               gravity=False)
        sim = Simulation(cfg, parts)
        rec = sim.pm_step()
        assert rec.n_substeps == 1

    def test_rung_margin_adds_depth_for_hydro(self):
        parts = gas_cube()
        cfg = SimulationConfig(box=10.0, pm_grid=8, a_init=0.5, a_final=0.52,
                               n_pm_steps=1, max_rung=4, rung_margin=2,
                               gravity=False)
        sim = Simulation(cfg, parts)
        rec = sim.pm_step()
        # hydro runs always carry at least the margin in depth
        assert rec.n_substeps >= 2
