"""CRK correction tests: the reproducing conditions are the core invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sph.crk import (
    compute_corrections,
    compute_moments,
    corrected_kernel_pairs,
)
from repro.core.sph.kernels import get_kernel
from repro.tree import neighbor_pairs


def glass_like_positions(n_per_dim, box, jitter, seed=0):
    rng = np.random.default_rng(seed)
    spacing = box / n_per_dim
    coords = (np.arange(n_per_dim) + 0.5) * spacing
    gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
    pos = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)
    pos += rng.uniform(-jitter, jitter, pos.shape) * spacing
    return np.mod(pos, box)


@pytest.fixture(scope="module")
def lattice_setup():
    box = 1.0
    n = 8
    pos = glass_like_positions(n, box, jitter=0.2, seed=42)
    h = np.full(len(pos), 2.6 * box / n)
    pi, pj = neighbor_pairs(pos, h, box=box)
    kernel = get_kernel("wendland_c4")
    return pos, h, pi, pj, kernel, box


def _volumes(pos, h, pi, pj, kernel, box):
    from repro.core.sph.hydro import compute_number_density

    _, vol = compute_number_density(pos, h, pi, pj, kernel, box=box)
    return vol


def _wrapped_dx(pos, pi, pj, box):
    dx = pos[pi] - pos[pj]
    return dx - box * np.round(dx / box)


class TestMoments:
    def test_m0_positive(self, lattice_setup):
        pos, h, pi, pj, kernel, box = lattice_setup
        vol = _volumes(pos, h, pi, pj, kernel, box)
        dx = _wrapped_dx(pos, pi, pj, box)
        m0, *_ = compute_moments(pos, vol, h, pi, pj, kernel, dx_pairs=dx)
        assert np.all(m0 > 0.0)

    def test_m2_symmetric(self, lattice_setup):
        pos, h, pi, pj, kernel, box = lattice_setup
        vol = _volumes(pos, h, pi, pj, kernel, box)
        dx = _wrapped_dx(pos, pi, pj, box)
        _, _, m2, *_ = compute_moments(pos, vol, h, pi, pj, kernel, dx_pairs=dx)
        np.testing.assert_allclose(m2, np.swapaxes(m2, -1, -2), atol=1e-14)

    def test_moment_gradients_match_fd(self, lattice_setup):
        """Moment gradients are *field* gradients: differentiate the moment
        sums with respect to the evaluation point, holding every neighbor
        (including the self particle, as a sample point) fixed."""
        pos, h, pi, pj, kernel, box = lattice_setup
        vol = _volumes(pos, h, pi, pj, kernel, box)
        dx = _wrapped_dx(pos, pi, pj, box)
        _, _, _, dm0, dm1, _ = compute_moments(
            pos, vol, h, pi, pj, kernel, dx_pairs=dx
        )
        target = 7
        sel = pi == target
        xj = pos[target] - dx[sel]  # unwrapped neighbor positions
        vj = vol[pj[sel]]
        ht = h[target]

        def field_moments(x):
            d = x - xj
            r = np.sqrt(np.sum(d * d, axis=-1))
            w = kernel.w(r, ht)
            m0 = np.sum(vj * w)
            m1 = np.sum(vj[:, None] * (xj - x) * w[:, None], axis=0)
            return m0, m1

        eps = 1e-6
        for axis in range(3):
            e = np.zeros(3)
            e[axis] = eps
            m0p, m1p = field_moments(pos[target] + e)
            m0m, m1m = field_moments(pos[target] - e)
            fd0 = (m0p - m0m) / (2 * eps)
            assert dm0[target, axis] == pytest.approx(fd0, rel=1e-4, abs=1e-6)
            fd1 = (m1p - m1m) / (2 * eps)
            np.testing.assert_allclose(
                dm1[target, axis], fd1, rtol=1e-4, atol=1e-6
            )


class TestReproducingConditions:
    def test_constant_reproduced(self, lattice_setup):
        """sum_j V_j W^R_ij == 1 exactly (zeroth-order consistency)."""
        pos, h, pi, pj, kernel, box = lattice_setup
        vol = _volumes(pos, h, pi, pj, kernel, box)
        dx = _wrapped_dx(pos, pi, pj, box)
        corr = compute_corrections(pos, vol, h, pi, pj, kernel, dx_pairs=dx)
        wr, _ = corrected_kernel_pairs(corr, pos, h, pi, pj, kernel, dx_pairs=dx)
        interp = np.zeros(len(pos))
        np.add.at(interp, pi, vol[pj] * wr)
        np.testing.assert_allclose(interp, 1.0, atol=1e-9)

    def test_linear_field_reproduced(self, lattice_setup):
        """sum_j V_j f(x_j) W^R_ij == f(x_i) for linear f (first-order)."""
        pos, h, pi, pj, kernel, box = lattice_setup
        vol = _volumes(pos, h, pi, pj, kernel, box)
        dx = _wrapped_dx(pos, pi, pj, box)
        corr = compute_corrections(pos, vol, h, pi, pj, kernel, dx_pairs=dx)
        wr, _ = corrected_kernel_pairs(corr, pos, h, pi, pj, kernel, dx_pairs=dx)
        # evaluate the linear field at the periodically-unwrapped neighbor
        # location x_i - dx so linearity is meaningful across the wrap
        grad = np.array([0.7, -1.3, 2.1])
        xj_unwrapped = pos[pi] - dx
        fj = 0.5 + xj_unwrapped @ grad
        interp = np.zeros(len(pos))
        np.add.at(interp, pi, vol[pj] * wr * fj)
        expected = 0.5 + pos @ grad
        np.testing.assert_allclose(interp, expected, atol=1e-8)

    def test_corrected_gradient_exact_for_linear(self, lattice_setup):
        """sum_j V_j f(x_j) grad W^R_ij == grad f for linear f."""
        pos, h, pi, pj, kernel, box = lattice_setup
        vol = _volumes(pos, h, pi, pj, kernel, box)
        dx = _wrapped_dx(pos, pi, pj, box)
        corr = compute_corrections(pos, vol, h, pi, pj, kernel, dx_pairs=dx)
        _, gwr = corrected_kernel_pairs(corr, pos, h, pi, pj, kernel, dx_pairs=dx)
        grad = np.array([0.7, -1.3, 2.1])
        xj_unwrapped = pos[pi] - dx
        fj = 0.5 + xj_unwrapped @ grad
        # gradient interpolant: grad f(x_i) ~ sum_j V_j (f_j - f_i) grad W^R
        # (the f_i subtraction removes the grad-of-constant term; with exact
        # gradient corrections sum_j V_j grad W^R_ij = 0 so either form works)
        est = np.zeros((len(pos), 3))
        np.add.at(est, pi, (vol[pj] * fj)[:, None] * gwr)
        np.testing.assert_allclose(est, np.broadcast_to(grad, est.shape), atol=1e-6)

    def test_plain_sph_does_not_reproduce_linear(self, lattice_setup):
        """Sanity: the uncorrected kernel fails the linear test (so the
        corrections are doing real work)."""
        pos, h, pi, pj, kernel, box = lattice_setup
        vol = _volumes(pos, h, pi, pj, kernel, box)
        dx = _wrapped_dx(pos, pi, pj, box)
        r = np.sqrt(np.sum(dx * dx, axis=-1))
        w = kernel.w(r, h[pi])
        grad = np.array([0.7, -1.3, 2.1])
        fj = 0.5 + (pos[pi] - dx) @ grad
        interp = np.zeros(len(pos))
        np.add.at(interp, pi, vol[pj] * w * fj)
        expected = 0.5 + pos @ grad
        err = np.abs(interp - expected).max()
        assert err > 1e-6  # uncorrected error is visible


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_constant_reproduction_random_configs(seed):
    """Property: zeroth-order consistency holds for random particle sets."""
    rng = np.random.default_rng(seed)
    n = 40
    pos = rng.uniform(0, 1, (n, 3))
    h = np.full(n, 0.45)
    kernel = get_kernel("cubic_spline")
    pi, pj = neighbor_pairs(pos, h, box=1.0)
    from repro.core.sph.hydro import compute_number_density

    _, vol = compute_number_density(pos, h, pi, pj, kernel, box=1.0)
    dx = pos[pi] - pos[pj]
    dx -= np.round(dx)
    corr = compute_corrections(pos, vol, h, pi, pj, kernel, dx_pairs=dx)
    wr, _ = corrected_kernel_pairs(corr, pos, h, pi, pj, kernel, dx_pairs=dx)
    interp = np.zeros(n)
    np.add.at(interp, pi, vol[pj] * wr)
    np.testing.assert_allclose(interp, 1.0, atol=1e-7)
