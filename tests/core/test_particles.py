"""Particle container tests."""

import numpy as np
import pytest

from repro.core.particles import Particles, Species, make_gas_dm_pair


@pytest.fixture
def mixed():
    n = 10
    rng = np.random.default_rng(0)
    species = np.array([0, 1, 1, 0, 2, 1, 3, 0, 1, 2], dtype=np.int8)
    return Particles(
        pos=rng.uniform(0, 1, (n, 3)),
        vel=rng.normal(0, 1, (n, 3)),
        mass=rng.uniform(1, 2, n),
        species=species,
        u=rng.uniform(0, 10, n),
    )


class TestContainer:
    def test_defaults_filled(self, mixed):
        assert mixed.h.shape == (10,)
        assert mixed.metallicity.shape == (10,)
        np.testing.assert_array_equal(mixed.ids, np.arange(10))
        assert mixed.rung.dtype == np.int16

    def test_species_masks(self, mixed):
        assert mixed.gas.sum() == 4
        assert mixed.dark_matter.sum() == 3
        assert mixed.stars.sum() == 2
        assert mixed.black_holes.sum() == 1

    def test_select_roundtrip(self, mixed):
        gas = mixed.select(mixed.gas)
        assert len(gas) == 4
        assert np.all(gas.species == int(Species.GAS))

    def test_select_is_copy(self, mixed):
        sub = mixed.select(np.arange(3))
        sub.mass[:] = 99.0
        assert not np.any(mixed.mass == 99.0)

    def test_append_concatenates(self, mixed):
        both = mixed.append(mixed)
        assert len(both) == 20
        assert both.total_mass() == pytest.approx(2 * mixed.total_mass())

    def test_energy_accounting(self, mixed):
        ke = 0.5 * np.sum(mixed.mass * np.sum(mixed.vel**2, axis=1))
        assert mixed.kinetic_energy() == pytest.approx(ke)
        assert mixed.internal_energy() == pytest.approx(
            np.sum(mixed.mass * mixed.u)
        )

    def test_metal_mass(self, mixed):
        mixed.metallicity[:] = 0.02
        assert mixed.total_metal_mass() == pytest.approx(
            0.02 * mixed.total_mass()
        )

    def test_empty(self):
        e = Particles.empty()
        assert len(e) == 0
        assert e.total_mass() == 0.0


class TestGasDMSplit:
    def test_split_masses_match_baryon_fraction(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 10, (64, 3))
        vel = rng.normal(0, 1, (64, 3))
        p = make_gas_dm_pair(
            pos, vel, particle_mass=100.0, omega_b=0.05, omega_m=0.30, box=10.0
        )
        assert len(p) == 128
        fb = 0.05 / 0.30
        assert p.mass[p.gas].sum() == pytest.approx(64 * 100.0 * fb)
        assert p.total_mass() == pytest.approx(64 * 100.0)

    def test_gas_offset_within_box(self):
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 5, (27, 3))
        p = make_gas_dm_pair(
            pos, np.zeros((27, 3)), 1.0, omega_b=0.05, omega_m=0.3, box=5.0
        )
        assert np.all(p.pos >= 0) and np.all(p.pos < 5.0)

    def test_velocities_duplicated(self):
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 1, (8, 3))
        vel = rng.normal(0, 1, (8, 3))
        p = make_gas_dm_pair(pos, vel, 1.0, omega_b=0.05, omega_m=0.3, box=1.0)
        np.testing.assert_allclose(p.vel[p.dark_matter], vel)
        np.testing.assert_allclose(p.vel[p.gas], vel)

    def test_u_init_applied_to_gas_only(self):
        pos = np.random.default_rng(4).uniform(0, 1, (8, 3))
        p = make_gas_dm_pair(
            pos, np.zeros((8, 3)), 1.0, omega_b=0.05, omega_m=0.3,
            u_init=42.0, box=1.0,
        )
        np.testing.assert_allclose(p.u[p.gas], 42.0)
        np.testing.assert_allclose(p.u[p.dark_matter], 0.0)
