"""Unit and property tests for SPH smoothing kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sph.kernels import KERNELS, get_kernel

ALL_KERNELS = sorted(KERNELS)


@pytest.mark.parametrize("name", ALL_KERNELS)
class TestKernelBasics:
    def test_positive_inside_support(self, name):
        k = get_kernel(name)
        r = np.linspace(0.0, 0.999, 200)
        assert np.all(k.w(r, 1.0) > 0.0)

    def test_zero_outside_support(self, name):
        k = get_kernel(name)
        r = np.linspace(1.0, 3.0, 50)
        np.testing.assert_allclose(k.w(r, 1.0), 0.0, atol=1e-14)
        np.testing.assert_allclose(k.dw_dr(r, 1.0), 0.0, atol=1e-14)

    def test_normalization_3d(self, name):
        """4 pi integral r^2 W(r) dr == 1."""
        k = get_kernel(name)
        r = np.linspace(1e-6, 1.0, 20001)
        integrand = 4.0 * np.pi * r**2 * k.w(r, 1.0)
        total = np.trapezoid(integrand, r)
        assert total == pytest.approx(1.0, rel=1e-4)

    def test_monotone_decreasing(self, name):
        k = get_kernel(name)
        r = np.linspace(0.0, 0.999, 500)
        w = k.w(r, 1.0)
        assert np.all(np.diff(w) <= 1e-12)

    def test_derivative_matches_finite_difference(self, name):
        k = get_kernel(name)
        r = np.linspace(0.05, 0.95, 40)
        eps = 1e-6
        fd = (k.w(r + eps, 1.0) - k.w(r - eps, 1.0)) / (2 * eps)
        np.testing.assert_allclose(k.dw_dr(r, 1.0), fd, rtol=1e-4, atol=1e-8)

    def test_h_scaling(self, name):
        """W(r, h) = h^-3 W(r/h, 1)."""
        k = get_kernel(name)
        r = np.linspace(0.0, 1.9, 50)
        h = 2.0
        np.testing.assert_allclose(
            k.w(r, h), k.w(r / h, 1.0) / h**3, rtol=1e-12
        )

    def test_gradient_points_inward(self, name):
        """grad W along +x for separation +x should be negative (attractive)."""
        k = get_kernel(name)
        dx = np.array([[0.5, 0.0, 0.0]])
        g = k.grad(dx, 1.0)
        assert g[0, 0] < 0.0
        assert g[0, 1] == g[0, 2] == 0.0

    def test_gradient_zero_at_origin(self, name):
        k = get_kernel(name)
        g = k.grad(np.zeros((1, 3)), 1.0)
        np.testing.assert_allclose(g, 0.0)


@given(
    name=st.sampled_from(ALL_KERNELS),
    r=st.floats(0.0, 2.0),
    h=st.floats(0.1, 10.0),
)
@settings(max_examples=200, deadline=None)
def test_kernel_nonnegative_everywhere(name, r, h):
    k = get_kernel(name)
    val = k.w(np.array([r]), h)[0]
    assert val >= 0.0
    assert np.isfinite(val)


@given(
    name=st.sampled_from(ALL_KERNELS),
    h=st.floats(0.1, 10.0),
)
@settings(max_examples=50, deadline=None)
def test_self_value_positive(name, h):
    k = get_kernel(name)
    assert k.self_value(h) > 0.0


def test_unknown_kernel_raises():
    with pytest.raises(ValueError, match="unknown kernel"):
        get_kernel("nope")
