"""PM Green's-function memoization across PMSolver instances."""

import numpy as np
import pytest

from repro.core.gravity.pm import (
    PMSolver,
    clear_green_cache,
    green_cache_stats,
    green_tables_nbytes,
    shared_green_tables,
)
from repro.observe import default_observatory


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_green_cache()
    yield
    clear_green_cache()


class TestGreenMemo:
    def test_same_shape_shares_tables(self):
        s1 = PMSolver(n=12, box=30.0)
        s2 = PMSolver(n=12, box=30.0)
        assert s1._green is s2._green  # identical objects, not copies
        assert s1._k2 is s2._k2
        stats = green_cache_stats()
        assert stats["built"] == 1 and stats["reused"] == 1

    def test_distinct_shapes_distinct_tables(self):
        a = PMSolver(n=12, box=30.0)
        b = PMSolver(n=16, box=30.0)
        c = PMSolver(n=12, box=40.0)
        d = PMSolver(n=12, box=30.0, r_split=2.0)
        greens = {id(s._green) for s in (a, b, c, d)}
        assert len(greens) == 4
        assert green_cache_stats()["built"] == 4

    def test_tables_are_frozen(self):
        s = PMSolver(n=12, box=30.0)
        with pytest.raises(ValueError):
            s._green[0, 0, 0] = 1.0

    def test_rebuild_counters_in_registry(self):
        reg = default_observatory().registry
        before_b = reg.counter("pm/green_builds").value
        before_r = reg.counter("pm/green_reuses").value
        PMSolver(n=14, box=25.0)
        PMSolver(n=14, box=25.0)
        assert reg.counter("pm/green_builds").value == before_b + 1
        assert reg.counter("pm/green_reuses").value == before_r + 1

    def test_shared_solver_accelerations_identical(self):
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 30.0, (40, 3))
        mass = np.ones(40)
        clear_green_cache()
        acc_cold = PMSolver(n=12, box=30.0).accelerations(pos, mass, 1.0)
        acc_warm = PMSolver(n=12, box=30.0).accelerations(pos, mass, 1.0)
        np.testing.assert_array_equal(acc_cold, acc_warm)

    def test_per_instance_eval_counters_independent(self):
        pos = np.random.default_rng(4).uniform(0, 30.0, (20, 3))
        mass = np.ones(20)
        s1 = PMSolver(n=12, box=30.0)
        s2 = PMSolver(n=12, box=30.0)
        s1.accelerations(pos, mass, 1.0)
        assert (s1.n_evaluations, s2.n_evaluations) == (1, 0)

    def test_lru_eviction_bounded(self):
        for i in range(12):  # cache holds 8 shapes
            shared_green_tables(8 + 2 * i, 30.0)
        from repro.core.gravity.pm import _GREEN_CACHE

        assert len(_GREEN_CACHE) == 8

    def test_nbytes_estimate_matches_tables(self):
        n = 12
        _, _, _, k2, green = shared_green_tables(n, 30.0)
        assert green_tables_nbytes(n) == k2.nbytes + green.nbytes
