"""EOS and periodic-geometry unit/property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import minimum_image, pair_displacements, wrap_positions
from repro.core.sph.eos import IdealGasEOS


class TestIdealGas:
    def setup_method(self):
        self.eos = IdealGasEOS()

    def test_pressure_definition(self):
        p = self.eos.pressure(np.array([2.0]), np.array([3.0]))
        assert p[0] == pytest.approx((5 / 3 - 1) * 2.0 * 3.0)

    def test_negative_u_clamped(self):
        assert self.eos.pressure(np.array([1.0]), np.array([-5.0]))[0] == 0.0
        assert self.eos.sound_speed(np.array([1.0]), np.array([-5.0]))[0] == 0.0

    def test_sound_speed_relation(self):
        """c_s^2 = gamma P / rho."""
        rho, u = np.array([1.7]), np.array([42.0])
        cs = self.eos.sound_speed(rho, u)
        p = self.eos.pressure(rho, u)
        assert cs[0] ** 2 == pytest.approx(5 / 3 * p[0] / rho[0])

    @given(u=st.floats(1e-3, 1e8), mu=st.floats(0.5, 1.3))
    @settings(max_examples=100, deadline=None)
    def test_temperature_roundtrip(self, u, mu):
        t = self.eos.temperature(u, mu=mu)
        back = self.eos.internal_energy_from_temperature(t, mu=mu)
        assert back == pytest.approx(u, rel=1e-12)

    @given(rho=st.floats(1e-6, 1e6), p=st.floats(1e-6, 1e6))
    @settings(max_examples=100, deadline=None)
    def test_pressure_energy_roundtrip(self, rho, p):
        u = self.eos.internal_energy_from_pressure(rho, p)
        assert self.eos.pressure(rho, u) == pytest.approx(p, rel=1e-12)

    def test_temperature_magnitude(self):
        """Physical anchor: ionized gas at 1e4 K has u ~ 210 (km/s)^2 and
        sound speed ~ 15 km/s (the classic warm-IGM numbers)."""
        u = self.eos.internal_energy_from_temperature(1.0e4, mu=0.59)
        assert u == pytest.approx(210.0, rel=0.01)
        cs = self.eos.sound_speed(1.0, u)
        assert cs == pytest.approx(15.3, rel=0.02)

    def test_custom_gamma(self):
        eos = IdealGasEOS(gamma=1.4)
        assert eos.pressure(1.0, 1.0) == pytest.approx(0.4)


class TestGeometry:
    def test_wrap(self):
        pos = np.array([[-0.1, 5.0, 10.2]])
        np.testing.assert_allclose(
            wrap_positions(pos, 10.0), [[9.9, 5.0, 0.2]], atol=1e-12
        )

    def test_minimum_image_scalar_box(self):
        dx = np.array([[7.0, -8.0, 0.5]])
        out = minimum_image(dx, 10.0)
        np.testing.assert_allclose(out, [[-3.0, 2.0, 0.5]])

    def test_minimum_image_vector_box(self):
        dx = np.array([[7.0, 3.0, 0.2]])
        out = minimum_image(dx, np.array([10.0, 4.0, 0.5]))
        np.testing.assert_allclose(out, [[-3.0, -1.0, 0.2]])

    def test_minimum_image_none_is_noop(self):
        dx = np.array([[100.0, -50.0, 3.0]])
        np.testing.assert_array_equal(minimum_image(dx, None), dx)

    @given(
        x=st.floats(-50, 50), box=st.floats(1.0, 20.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_minimum_image_bounds(self, x, box):
        out = minimum_image(np.array([[x, 0.0, 0.0]]), box)
        assert abs(out[0, 0]) <= box / 2 + 1e-9

    def test_pair_displacements(self):
        pos = np.array([[0.5, 0.0, 0.0], [9.5, 0.0, 0.0]])
        dx = pair_displacements(pos, np.array([0]), np.array([1]), 10.0)
        np.testing.assert_allclose(dx, [[1.0, 0.0, 0.0]])
