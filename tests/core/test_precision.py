"""Mixed-precision (FP32 short-range) tests."""

import numpy as np
import pytest

from repro.core.gravity import (
    compare_precisions,
    short_range_accelerations,
    short_range_accelerations_fp32,
)
from repro.tree import neighbor_pairs


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(3)
    box = 20.0
    pos = rng.uniform(0, box, (400, 3))
    mass = rng.uniform(1, 2, 400) * 1e10
    r_split, cutoff = 2.0, 9.0
    pi, pj = neighbor_pairs(pos, np.full(400, cutoff), box=box)
    return pos, mass, pi, pj, r_split, box


class TestFP32ShortRange:
    def test_fp32_matches_fp64_closely(self, cloud):
        pos, mass, pi, pj, r_split, box = cloud
        report = compare_precisions(
            pos, mass, pi, pj, r_split=r_split, softening=0.05, box=box
        )
        assert report.rms_relative_error < 1e-3
        assert report.median_relative_error < 1e-4
        assert report.acceptable

    def test_fp32_output_dtype_and_memory(self, cloud):
        pos, mass, pi, pj, r_split, box = cloud
        a32 = short_range_accelerations_fp32(
            pos, mass, pi, pj, r_split=r_split, softening=0.05, box=box
        )
        assert a32.dtype == np.float32
        report = compare_precisions(
            pos, mass, pi, pj, r_split=r_split, softening=0.05, box=box
        )
        assert report.memory_ratio == 0.5

    def test_fp32_error_below_pm_noise(self, cloud):
        """The design criterion: FP32 short-range error must sit well
        below the ~1% PM mesh noise, so it never dominates the force
        error budget (paper's 'without compromising scientific fidelity')."""
        pos, mass, pi, pj, r_split, box = cloud
        report = compare_precisions(
            pos, mass, pi, pj, r_split=r_split, softening=0.05, box=box
        )
        pm_noise_level = 0.01
        assert report.rms_relative_error < 0.1 * pm_noise_level

    def test_antisymmetry_preserved_in_fp32(self):
        pos = np.array([[1.0, 1.0, 1.0], [2.5, 1.0, 1.0]])
        mass = np.array([5e9, 3e9])
        pi = np.array([0, 1])
        pj = np.array([1, 0])
        a = short_range_accelerations_fp32(
            pos, mass, pi, pj, r_split=2.0, softening=0.01
        )
        f0 = mass[0] * a[0].astype(np.float64)
        f1 = mass[1] * a[1].astype(np.float64)
        np.testing.assert_allclose(f0, -f1, rtol=1e-5)
