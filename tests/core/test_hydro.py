"""CRKSPH hydrodynamics tests: conservation is the headline invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sph import (
    IdealGasEOS,
    compute_density,
    compute_number_density,
    crksph_derivatives,
    get_kernel,
    update_smoothing_lengths,
)
from repro.core.sph.crk import compute_corrections
from repro.tree import neighbor_pairs


def random_gas_state(n=60, seed=0, box=1.0):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, box, (n, 3))
    vel = rng.normal(0, 10.0, (n, 3))
    mass = rng.uniform(0.5, 2.0, n)
    u = rng.uniform(10.0, 100.0, n)
    h = np.full(n, 0.35 * box)
    return pos, vel, mass, u, h


def lattice_gas_state(n_per_dim=6, box=1.0, u0=50.0):
    spacing = box / n_per_dim
    coords = (np.arange(n_per_dim) + 0.5) * spacing
    gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
    pos = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)
    n = len(pos)
    vel = np.zeros((n, 3))
    mass = np.ones(n)
    u = np.full(n, u0)
    h = np.full(n, 2.4 * spacing)
    return pos, vel, mass, u, h


class TestDensity:
    def test_uniform_lattice_density(self):
        """Corrected density of a uniform lattice matches mass/cell volume."""
        box = 1.0
        pos, vel, mass, u, h = lattice_gas_state(8, box)
        kernel = get_kernel("wendland_c4")
        pi, pj = neighbor_pairs(pos, h, box=box)
        _, vol = compute_number_density(pos, h, pi, pj, kernel, box=box)
        dx = pos[pi] - pos[pj]
        dx -= box * np.round(dx / box)
        corr = compute_corrections(pos, vol, h, pi, pj, kernel, dx_pairs=dx)
        rho = compute_density(pos, mass, h, pi, pj, kernel, corr, box=box)
        expected = mass.sum() / box**3
        # kernel discretization biases the number density by ~1%; the
        # corrected density equals m/V exactly, so rho*V == m is the
        # round-off-level invariant while rho itself is only ~1% accurate
        np.testing.assert_allclose(rho, expected, rtol=0.02)
        np.testing.assert_allclose(rho * vol, mass, rtol=1e-9)

    def test_volumes_partition_box(self):
        """Number-density volumes of a uniform periodic lattice tile the box."""
        box = 2.0
        pos, vel, mass, u, h = lattice_gas_state(6, box)
        kernel = get_kernel("wendland_c4")
        pi, pj = neighbor_pairs(pos, h, box=box)
        _, vol = compute_number_density(pos, h, pi, pj, kernel, box=box)
        assert vol.sum() == pytest.approx(box**3, rel=0.02)


class TestConservation:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_momentum_conserved(self, seed):
        pos, vel, mass, u, h = random_gas_state(seed=seed)
        kernel = get_kernel("wendland_c4")
        pi, pj = neighbor_pairs(pos, h, box=1.0)
        d = crksph_derivatives(pos, vel, mass, u, h, pi, pj, kernel, box=1.0)
        total_force = np.sum(mass[:, None] * d.accel, axis=0)
        scale = np.abs(mass[:, None] * d.accel).sum()
        assert np.all(np.abs(total_force) < 1e-10 * max(scale, 1.0))

    @pytest.mark.parametrize("seed", [0, 3])
    def test_energy_conserved(self, seed):
        """Kinetic + internal energy rate sums to zero."""
        pos, vel, mass, u, h = random_gas_state(seed=seed)
        kernel = get_kernel("wendland_c4")
        pi, pj = neighbor_pairs(pos, h, box=1.0)
        d = crksph_derivatives(pos, vel, mass, u, h, pi, pj, kernel, box=1.0)
        dkin = np.sum(mass * np.einsum("na,na->n", vel, d.accel))
        dint = np.sum(mass * d.du_dt)
        scale = abs(dkin) + abs(dint)
        assert abs(dkin + dint) < 1e-9 * max(scale, 1.0)

    def test_uniform_gas_is_static(self):
        """No net force or heating in a uniform, static gas."""
        pos, vel, mass, u, h = lattice_gas_state(6)
        kernel = get_kernel("wendland_c4")
        pi, pj = neighbor_pairs(pos, h, box=1.0)
        d = crksph_derivatives(pos, vel, mass, u, h, pi, pj, kernel, box=1.0)
        pressure_scale = d.pressure.mean() / d.rho.mean() / h.mean()
        assert np.abs(d.accel).max() < 1e-6 * pressure_scale
        assert np.abs(d.du_dt).max() < 1e-8 * d.pressure.mean()

    def test_viscosity_off_for_receding_uniform_expansion(self):
        """Pure uniform expansion has no approaching pairs -> viscosity mu=0
        everywhere; conservation still holds."""
        pos, vel, mass, u, h = lattice_gas_state(5)
        center = 0.5
        vel = 5.0 * (pos - center)  # Hubble-like outflow
        kernel = get_kernel("wendland_c4")
        pi, pj = neighbor_pairs(pos, h, box=None)
        d = crksph_derivatives(pos, vel, mass, u, h, pi, pj, kernel, box=None)
        # expansion does positive work on surroundings -> gas cools on average
        assert np.sum(mass * d.du_dt) < 0.0


class TestPressureGradient:
    def test_acceleration_points_down_gradient(self):
        """A hot slab in a cold gas accelerates material away from the slab."""
        box = 1.0
        pos, vel, mass, u, h = lattice_gas_state(8, box, u0=10.0)
        hot = np.abs(pos[:, 0] - 0.5) < 0.1
        u = np.where(hot, 100.0, 10.0)
        kernel = get_kernel("wendland_c4")
        pi, pj = neighbor_pairs(pos, h, box=box)
        d = crksph_derivatives(pos, vel, mass, u, h, pi, pj, kernel, box=box)
        # particles just right of the slab accelerate +x; left accelerate -x
        right = (pos[:, 0] > 0.62) & (pos[:, 0] < 0.8)
        left = (pos[:, 0] < 0.38) & (pos[:, 0] > 0.2)
        assert d.accel[right, 0].mean() > 0.0
        assert d.accel[left, 0].mean() < 0.0

    def test_hot_region_heats_neighbors_via_compression(self):
        """Signal speeds are finite and positive for hot gas."""
        pos, vel, mass, u, h = lattice_gas_state(6, u0=50.0)
        kernel = get_kernel("wendland_c4")
        pi, pj = neighbor_pairs(pos, h, box=1.0)
        d = crksph_derivatives(pos, vel, mass, u, h, pi, pj, kernel, box=1.0)
        eos = IdealGasEOS()
        cs = eos.sound_speed(d.rho, u)
        assert np.all(d.max_signal_speed >= cs * 0.99)
        assert np.all(np.isfinite(d.max_signal_speed))


class TestSmoothingLengths:
    def test_target_neighbor_scaling(self):
        vol = np.full(100, 1.0e-3)
        h = update_smoothing_lengths(vol, n_target=60, relax=1.0)
        # uniform: (4/3) pi h^3 n = N_ngb with n = 1/V
        n_ngb = 4.0 / 3.0 * np.pi * h**3 / vol
        np.testing.assert_allclose(n_ngb, 60.0, rtol=1e-10)

    def test_relaxation_blends_old(self):
        vol = np.ones(10)
        h_old = np.full(10, 5.0)
        h = update_smoothing_lengths(vol, eta=1.0, h_old=h_old, relax=0.25)
        np.testing.assert_allclose(h, 0.25 * 1.0 + 0.75 * 5.0)

    def test_clipping(self):
        vol = np.ones(4)
        h = update_smoothing_lengths(vol, eta=10.0, h_max=2.0, relax=1.0)
        assert np.all(h == 2.0)


@given(seed=st.integers(0, 500))
@settings(max_examples=10, deadline=None)
def test_property_conservation_random_states(seed):
    """Momentum + energy conservation for arbitrary random gas states."""
    pos, vel, mass, u, h = random_gas_state(n=40, seed=seed)
    kernel = get_kernel("cubic_spline")
    pi, pj = neighbor_pairs(pos, h, box=1.0)
    d = crksph_derivatives(pos, vel, mass, u, h, pi, pj, kernel, box=1.0)
    total_force = np.sum(mass[:, None] * d.accel, axis=0)
    scale = max(np.abs(mass[:, None] * d.accel).sum(), 1.0)
    assert np.all(np.abs(total_force) < 1e-9 * scale)
    dkin = np.sum(mass * np.einsum("na,na->n", vel, d.accel))
    dint = np.sum(mass * d.du_dt)
    assert abs(dkin + dint) < 1e-8 * max(abs(dkin) + abs(dint), 1.0)


class TestGradientExactness:
    """The momentum equation must recover -grad(P)/rho exactly for linear
    pressure fields (regression test for the G_ij pairing factor)."""

    def test_linear_pressure_gradient_acceleration(self):
        from repro.core.sph.eos import IdealGasEOS

        n = 12
        d = 1.0 / n
        coords = (np.arange(n) + 0.5) * d
        g = np.meshgrid(coords, coords, coords, indexing="ij")
        pos = np.stack([c.ravel() for c in g], axis=-1)
        mass = np.full(len(pos), d**3)  # rho = 1
        eos = IdealGasEOS(gamma=1.4)
        grad_p = 0.5
        p_field = 1.0 + grad_p * pos[:, 0]
        u = p_field / (0.4 * 1.0)
        h = np.full(len(pos), 2.2 * d)
        pi, pj = neighbor_pairs(pos, h, box=None)
        der = crksph_derivatives(
            pos, np.zeros_like(pos), mass, u, h, pi, pj,
            get_kernel("wendland_c4"), eos=eos, box=None,
        )
        interior = np.all((pos > 0.25) & (pos < 0.75), axis=1)
        np.testing.assert_allclose(
            der.accel[interior, 0], -grad_p, rtol=2e-3
        )
        # transverse components vanish
        np.testing.assert_allclose(der.accel[interior, 1:], 0.0, atol=1e-4)
