"""Gravity tests: PM accuracy, force splitting completeness, short-range."""

import numpy as np
import pytest

from repro.constants import G_COSMO
from repro.core.gravity import (
    PMSolver,
    cic_deposit,
    cic_interpolate,
    direct_accelerations,
    long_range_shape,
    recommended_cutoff,
    short_range_accelerations,
    short_range_shape,
)
from repro.tree import neighbor_pairs


class TestCIC:
    def test_deposit_conserves_mass(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 10, (300, 3))
        mass = rng.uniform(0.5, 2.0, 300)
        n, box = 16, 10.0
        rho = cic_deposit(pos, mass, n, box)
        cell_vol = (box / n) ** 3
        assert rho.sum() * cell_vol == pytest.approx(mass.sum(), rel=1e-12)

    def test_deposit_single_particle_at_cell_center(self):
        """A particle exactly at a cell center deposits all mass in one cell."""
        n, box = 8, 8.0
        pos = np.array([[0.5, 0.5, 0.5]])  # center of cell (0,0,0)
        rho = cic_deposit(pos, np.array([1.0]), n, box)
        assert rho[0, 0, 0] == pytest.approx(1.0, rel=1e-12)
        assert np.count_nonzero(rho) == 1

    def test_interpolate_constant_field(self):
        n, box = 8, 4.0
        field = np.full((n, n, n), 3.5)
        pos = np.random.default_rng(1).uniform(0, box, (50, 3))
        vals = cic_interpolate(field, pos, box)
        np.testing.assert_allclose(vals, 3.5, rtol=1e-12)

    def test_interpolate_vector_field(self):
        n, box = 8, 4.0
        field = np.zeros((n, n, n, 3))
        field[..., 1] = 2.0
        pos = np.random.default_rng(2).uniform(0, box, (20, 3))
        vals = cic_interpolate(field, pos, box)
        np.testing.assert_allclose(vals[:, 1], 2.0, rtol=1e-12)
        np.testing.assert_allclose(vals[:, 0], 0.0)

    def test_deposit_interpolate_roundtrip_linear(self):
        """CIC interpolation of a linear grid field is exact away from wrap."""
        n, box = 16, 16.0
        x = (np.arange(n) + 0.5) * (box / n)
        field = np.broadcast_to(x[:, None, None], (n, n, n)).copy()
        pos = np.random.default_rng(3).uniform(2.0, 14.0, (100, 3))
        vals = cic_interpolate(field, pos, box)
        np.testing.assert_allclose(vals, pos[:, 0], rtol=1e-10)


class TestPMSolver:
    def test_sinusoidal_density_potential(self):
        """Analytic check: delta = sin(k x) -> phi = -coeff sin(k x)/k^2."""
        n, box = 32, 1.0
        solver = PMSolver(n=n, box=box, deconvolve_cic=False)
        kx = 2.0 * np.pi / box * 2  # mode 2
        x = (np.arange(n) + 0.5) * (box / n)
        rho = 1.0 + 0.1 * np.sin(kx * x)[:, None, None] * np.ones((1, n, n))
        coeff = 4.0 * np.pi
        phi = solver.potential(rho, coeff)
        expected = -coeff * 0.1 * np.sin(kx * x) / kx**2
        got = phi[:, 0, 0] - phi[:, 0, 0].mean()
        np.testing.assert_allclose(got, expected - expected.mean(), atol=1e-10)

    def test_acceleration_is_minus_grad_phi(self):
        n, box = 32, 1.0
        solver = PMSolver(n=n, box=box, deconvolve_cic=False)
        kx = 2.0 * np.pi / box * 3
        x = (np.arange(n) + 0.5) * (box / n)
        rho = 1.0 + 0.05 * np.cos(kx * x)[:, None, None] * np.ones((1, n, n))
        acc = solver.acceleration_grid(rho, 4.0 * np.pi)
        expected_ax = -4.0 * np.pi * 0.05 * np.sin(kx * x) / kx
        np.testing.assert_allclose(acc[:, 0, 0, 0], expected_ax, atol=1e-10)
        np.testing.assert_allclose(acc[..., 1], 0.0, atol=1e-10)

    def test_two_particle_pm_force_matches_newton(self):
        """Well-separated particle pair: PM force ~ Newtonian attraction."""
        n, box = 64, 100.0
        solver = PMSolver(n=n, box=box)
        sep = 25.0
        pos = np.array([[37.5, 50.0, 50.0], [37.5 + sep, 50.0, 50.0]])
        mass = np.array([1.0e10, 1.0e10])
        acc = solver.accelerations(pos, mass, coeff=4.0 * np.pi * G_COSMO)
        expected = G_COSMO * mass[1] / sep**2
        # particle 0 pulled toward +x (periodic images contribute ~1%)
        assert acc[0, 0] == pytest.approx(expected, rel=0.05)
        assert acc[1, 0] == pytest.approx(-expected, rel=0.05)

    def test_momentum_conserved_by_pm(self):
        rng = np.random.default_rng(4)
        pos = rng.uniform(0, 50, (100, 3))
        mass = rng.uniform(1, 3, 100) * 1e10
        solver = PMSolver(n=32, box=50.0)
        acc = solver.accelerations(pos, mass, coeff=4.0 * np.pi * G_COSMO)
        net = np.sum(mass[:, None] * acc, axis=0)
        scale = np.abs(mass[:, None] * acc).sum()
        assert np.all(np.abs(net) < 1e-8 * scale)

    def test_uniform_density_no_force(self):
        n, box = 16, 8.0
        solver = PMSolver(n=n, box=box)
        rho = np.full((n, n, n), 2.0)
        acc = solver.acceleration_grid(rho, 4.0 * np.pi)
        np.testing.assert_allclose(acc, 0.0, atol=1e-12)


class TestForceSplit:
    def test_shape_functions_sum_to_one(self):
        r = np.linspace(0.01, 10.0, 200)
        rs = 1.3
        np.testing.assert_allclose(
            short_range_shape(r, rs) + long_range_shape(r, rs), 1.0, rtol=1e-12
        )

    def test_short_range_dominates_small_r(self):
        rs = 1.0
        assert short_range_shape(np.array([0.01]), rs)[0] == pytest.approx(1.0, abs=1e-6)

    def test_long_range_dominates_large_r(self):
        rs = 1.0
        assert short_range_shape(np.array([8.0]), rs)[0] < 1e-6

    def test_recommended_cutoff_property(self):
        rs = 2.0
        rc = recommended_cutoff(rs, tol=1e-4)
        assert short_range_shape(np.array([rc * 1.01]), rs)[0] < 1e-4
        assert short_range_shape(np.array([rc * 0.9]), rs)[0] > 1e-4

    def test_zero_split_shape(self):
        np.testing.assert_allclose(short_range_shape(np.ones(3), 0.0), 0.0)
        assert recommended_cutoff(0.0) == 0.0


class TestSplitCompleteness:
    """PM(long) + tree(short) should equal the direct Newtonian force."""

    def test_handover_seamless_two_particles(self):
        """Sweep a particle pair through the handover region: PM(long) +
        pair(short) must recover Newton's 1/r^2 at every separation.

        The box is much larger than the separations so periodic images are
        negligible and the un-Ewald-summed Newtonian force is a valid
        reference (unlike a random cloud, where minimum-image direct
        summation is *not* the true periodic force).
        """
        box, ngrid = 100.0, 64
        r_split = 2.0 * box / ngrid  # ~3 Mpc/h: a few grid cells, HACC-style
        softening = 1e-4
        solver = PMSolver(n=ngrid, box=box, r_split=r_split)
        mass = np.array([1.0e10, 1.0e10])
        pi = np.array([0, 1])
        pj = np.array([1, 0])
        # beyond ~3 r_split the periodic-image attraction (a real effect the
        # PM solver includes but the 1/r^2 reference does not) exceeds 1%
        seps = np.array([0.6, 1.0, 1.8, 3.0]) * r_split
        for sep in seps:
            pos = np.array(
                [[50.0 - sep / 2, 50.0, 50.0], [50.0 + sep / 2, 50.0, 50.0]]
            )
            acc_long = solver.accelerations(
                pos, mass, coeff=4.0 * np.pi * G_COSMO
            )
            acc_short = short_range_accelerations(
                pos, mass, pi, pj, r_split=r_split, softening=softening, box=box
            )
            total = acc_long + acc_short
            expected = G_COSMO * mass[1] / sep**2
            assert total[0, 0] == pytest.approx(expected, rel=0.02), sep
            assert total[1, 0] == pytest.approx(-expected, rel=0.02), sep

    def test_short_range_antisymmetry(self):
        pos = np.array([[1.0, 1.0, 1.0], [2.0, 1.0, 1.0]])
        mass = np.array([5.0, 3.0])
        pi = np.array([0, 1])
        pj = np.array([1, 0])
        acc = short_range_accelerations(
            pos, mass, pi, pj, r_split=1.0, softening=0.01, box=None
        )
        f0 = mass[0] * acc[0]
        f1 = mass[1] * acc[1]
        np.testing.assert_allclose(f0, -f1, rtol=1e-12)
        assert acc[0, 0] > 0  # pulled toward +x neighbor

    def test_self_pairs_ignored(self):
        pos = np.array([[0.0, 0.0, 0.0]])
        mass = np.array([1.0])
        acc = short_range_accelerations(
            pos, mass, np.array([0]), np.array([0]), 1.0, 0.1
        )
        np.testing.assert_allclose(acc, 0.0)
