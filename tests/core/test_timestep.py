"""Hierarchical timestep tests: rung assignment, schedules, integration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timestep import (
    HierarchicalIntegrator,
    active_mask,
    assign_rungs,
    deepest_rung,
    rung_dt,
    timestep_criteria,
)


class TestCriteria:
    def test_cfl_limits_fast_gas(self):
        accel = np.zeros((3, 3))
        h = np.array([1.0, 1.0, 1.0])
        vsig = np.array([1.0, 10.0, 100.0])
        dt = timestep_criteria(accel, h, vsig, cfl=0.25)
        np.testing.assert_allclose(dt, 0.25 / vsig * h)

    def test_acceleration_criterion(self):
        accel = np.array([[4.0, 0.0, 0.0]])
        h = np.array([2.0])
        vsig = np.zeros(1)
        dt = timestep_criteria(accel, h, vsig, eta_accel=0.025)
        assert dt[0] == pytest.approx(np.sqrt(2 * 0.025 * 2.0 / 4.0))

    def test_cooling_time_limits(self):
        accel = np.zeros((1, 3))
        dt = timestep_criteria(
            accel,
            np.array([1.0]),
            np.zeros(1),
            u=np.array([100.0]),
            du_dt=np.array([-1000.0]),
            cooling_factor=0.25,
        )
        assert dt[0] == pytest.approx(0.025)

    def test_dt_max_cap(self):
        accel = np.zeros((1, 3))
        dt = timestep_criteria(accel, np.array([1.0]), np.zeros(1), dt_max=0.5)
        assert dt[0] == 0.5


class TestRungs:
    def test_rung_zero_when_dt_sufficient(self):
        rungs = assign_rungs(np.array([1.0, 2.0]), dt_pm=1.0)
        np.testing.assert_array_equal(rungs, [0, 0])

    def test_power_of_two_rungs(self):
        dt_req = np.array([1.0, 0.5, 0.49, 0.25, 0.13, 0.01])
        rungs = assign_rungs(dt_req, dt_pm=1.0)
        np.testing.assert_array_equal(rungs, [0, 1, 2, 2, 3, 7])

    def test_rung_dt_satisfies_requirement(self):
        rng = np.random.default_rng(0)
        dt_req = rng.uniform(0.001, 2.0, 100)
        rungs = assign_rungs(dt_req, dt_pm=1.0)
        dts = rung_dt(rungs, 1.0)
        assert np.all(dts <= dt_req + 1e-12)

    def test_max_rung_clip(self):
        rungs = assign_rungs(np.array([1e-12]), dt_pm=1.0, max_rung=5)
        assert rungs[0] == 5

    @given(dt=st.floats(1e-6, 10.0), dt_pm=st.floats(0.1, 10.0))
    @settings(max_examples=100, deadline=None)
    def test_property_rung_minimal(self, dt, dt_pm):
        """Assigned rung is the *smallest* satisfying dt_pm/2^r <= dt."""
        r = int(assign_rungs(np.array([dt]), dt_pm, max_rung=40)[0])
        assert dt_pm / 2**r <= dt + 1e-12 * dt_pm or r == 40
        if r > 0:
            assert dt_pm / 2 ** (r - 1) > dt


class TestSchedule:
    def test_rung0_active_only_at_start(self):
        rungs = np.array([0])
        depth = 3
        actives = [bool(active_mask(rungs, s, depth)[0]) for s in range(8)]
        assert actives == [True] + [False] * 7

    def test_deepest_rung_active_every_substep(self):
        rungs = np.array([3])
        actives = [bool(active_mask(rungs, s, 3)[0]) for s in range(8)]
        assert all(actives)

    def test_kick_counts_per_pm_step(self):
        """Rung r closes exactly 2^r substeps over one PM interval."""
        depth = 4
        for r in range(depth + 1):
            rungs = np.array([r])
            closes = sum(
                bool(active_mask(rungs, s + 1, depth)[0]) for s in range(2**depth)
            )
            assert closes == 2**r

    def test_deepest_rung_helper(self):
        assert deepest_rung(np.array([0, 2, 1])) == 2
        assert deepest_rung(np.array([], dtype=int)) == 0


class TestHierarchicalIntegrator:
    def test_constant_acceleration_all_rungs_agree(self):
        """A uniform constant force field integrates exactly regardless of
        rung assignment (leapfrog is exact for constant a)."""
        n = 8
        accel_const = np.tile(np.array([1.0, -2.0, 0.5]), (n, 1))

        def force(pos, vel, idx):
            return accel_const

        results = []
        for rungs in (np.zeros(n, dtype=int), np.full(n, 3, dtype=int)):
            pos = np.zeros((n, 3))
            vel = np.zeros((n, 3))
            integ = HierarchicalIntegrator(dt_pm=1.0)
            integ.run(pos, vel, rungs, force)
            results.append((pos.copy(), vel.copy()))
        np.testing.assert_allclose(results[0][0], results[1][0], rtol=1e-12)
        np.testing.assert_allclose(results[0][1], results[1][1], rtol=1e-12)
        # analytic: x = a t^2 / 2, v = a t
        np.testing.assert_allclose(results[0][1], accel_const, rtol=1e-12)

    def test_sho_energy_stable_on_fine_rung(self):
        """Harmonic oscillator: deep rungs integrate accurately."""
        omega = 2.0 * np.pi

        def force(pos, vel, idx):
            return -(omega**2) * pos

        pos = np.array([[1.0, 0.0, 0.0]])
        vel = np.zeros((1, 3))
        rungs = np.array([6])
        integ = HierarchicalIntegrator(dt_pm=0.5)
        for _ in range(2):  # one full period
            integ.run(pos, vel, rungs, force)
        assert pos[0, 0] == pytest.approx(1.0, abs=5e-3)
        assert vel[0, 0] == pytest.approx(0.0, abs=5e-2)

    def test_mixed_rungs_converge_to_fine_answer(self):
        """Two-particle system with different rungs stays consistent."""
        omega = 1.0

        def force(pos, vel, idx):
            return -(omega**2) * pos

        pos = np.array([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        vel = np.zeros((2, 3))
        rungs = np.array([2, 5])
        integ = HierarchicalIntegrator(dt_pm=0.2)
        integ.run(pos, vel, rungs, force)
        # both approximate cos(omega t); deep rung closer
        exact = np.cos(0.2)
        assert pos[0, 0] == pytest.approx(exact, abs=1e-3)
        assert pos[1, 0] == pytest.approx(exact, abs=1e-5)

    def test_stats_bookkeeping(self):
        def force(pos, vel, idx):
            return np.zeros_like(pos)

        pos = np.zeros((4, 3))
        vel = np.zeros((4, 3))
        rungs = np.array([0, 1, 2, 2])
        integ = HierarchicalIntegrator(dt_pm=1.0)
        stats = integ.run(pos, vel, rungs, force)
        assert stats.n_substeps == 4
        assert stats.deepest_rung == 2
        # opening eval (all 4 active at substep 0) + closings: rung0 once,
        # rung1 twice, rung2 4 times each
        assert stats.n_force_evaluations == 5
        assert stats.n_active_total == 4 + (1 + 2 + 4 + 4)
        assert stats.n_particles == 4
        assert stats.mean_active_fraction == pytest.approx(15 / (5 * 4))

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            HierarchicalIntegrator(dt_pm=0.0)

    def test_custom_drift_periodic_wrap(self):
        def force(pos, vel, idx):
            return np.zeros_like(pos)

        def drift(pos, vel, dt):
            pos += vel * dt
            np.mod(pos, 1.0, out=pos)

        pos = np.array([[0.9, 0.5, 0.5]])
        vel = np.array([[0.5, 0.0, 0.0]])
        integ = HierarchicalIntegrator(dt_pm=1.0)
        integ.run(pos, vel, np.array([0]), force, drift_fn=drift)
        assert 0.0 <= pos[0, 0] < 1.0
        assert pos[0, 0] == pytest.approx(0.4, abs=1e-12)
