"""Segment reductions vs the buffered ufunc scatters they replace."""

import numpy as np
import pytest

from repro.core.scatter import SegmentReducer, segment_max, segment_sum


def _add_at_reference(values, ids, n):
    out = np.zeros((n,) + np.asarray(values).shape[1:],
                   dtype=np.asarray(values).dtype)
    np.add.at(out, ids, values)
    return out


def _max_at_reference(values, ids, n, initial=0.0):
    v = np.asarray(values)
    out = np.full((n,) + v.shape[1:], initial, dtype=v.dtype)
    np.maximum.at(out, ids, v)
    return out


class TestSegmentSum:
    def test_duplicate_indices_accumulate(self):
        ids = np.array([0, 2, 2, 2, 5, 0])
        v = np.array([1.0, 10.0, 100.0, 1000.0, 7.0, 2.0])
        got = segment_sum(v, ids, 7)
        np.testing.assert_allclose(got, _add_at_reference(v, ids, 7))
        assert got[2] == 1110.0

    def test_empty_input(self):
        got = segment_sum(np.empty(0), np.empty(0, dtype=np.intp), 4)
        np.testing.assert_array_equal(got, np.zeros(4))
        got3 = segment_sum(np.empty((0, 3)), np.empty(0, dtype=np.intp), 4)
        np.testing.assert_array_equal(got3, np.zeros((4, 3)))

    def test_non_contiguous_segment_ids(self):
        # ids hit only segments {1, 5, 6} out of 9; the rest must stay zero
        ids = np.array([5, 1, 6, 5, 1])
        v = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        got = segment_sum(v, ids, 9)
        np.testing.assert_allclose(got, _add_at_reference(v, ids, 9))
        assert got[[0, 2, 3, 4, 7, 8]].sum() == 0.0

    @pytest.mark.parametrize("trailing", [(), (3,), (3, 3), (12,)])
    def test_matches_add_at_random(self, trailing):
        rng = np.random.default_rng(42)
        ids = rng.integers(0, 50, size=400)
        v = rng.normal(size=(400,) + trailing)
        np.testing.assert_allclose(
            segment_sum(v, ids, 50), _add_at_reference(v, ids, 50),
            rtol=1e-12, atol=1e-12,
        )

    def test_unsorted_vs_sorted_agree(self):
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 20, size=200)
        v = rng.normal(size=(200, 3))
        order = np.argsort(ids, kind="stable")
        a = segment_sum(v, ids, 20)
        b = segment_sum(v[order], ids[order], 20, assume_sorted=True)
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_float32_accumulates_in_float32(self):
        rng = np.random.default_rng(2)
        ids = np.sort(rng.integers(0, 8, size=100))
        v = rng.normal(size=(100, 3)).astype(np.float32)
        got = segment_sum(v, ids, 8)
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, _add_at_reference(v, ids, 8), rtol=1e-5)


class TestSegmentMax:
    def test_duplicates_and_empty_segments(self):
        ids = np.array([3, 0, 3, 3])
        v = np.array([2.0, -1.0, 9.0, 4.0])
        got = segment_max(v, ids, 5, initial=0.0)
        np.testing.assert_allclose(got, _max_at_reference(v, ids, 5))
        assert got[3] == 9.0
        assert got[1] == 0.0  # empty segment keeps the initial value

    def test_matches_maximum_at_random(self):
        rng = np.random.default_rng(7)
        ids = rng.integers(0, 30, size=500)
        v = rng.normal(size=500)
        np.testing.assert_allclose(
            segment_max(v, ids, 30, initial=-np.inf),
            _max_at_reference(v, ids, 30, initial=-np.inf),
        )

    def test_empty_input(self):
        got = segment_max(np.empty(0), np.empty(0, dtype=np.intp), 3,
                          initial=1.5)
        np.testing.assert_array_equal(got, np.full(3, 1.5))

    def test_all_negative_segment_with_neg_inf_initial(self):
        """Regression: the default ``initial=0.0`` silently clamps
        all-negative segments to zero; ``initial=-inf`` must return the
        true maximum instead (and keep -inf for empty segments)."""
        ids = np.array([0, 0, 2])
        v = np.array([-3.0, -1.5, -7.0])
        clamped = segment_max(v, ids, 3)  # documented legacy default
        np.testing.assert_array_equal(clamped, [0.0, 0.0, 0.0])
        true_max = segment_max(v, ids, 3, initial=-np.inf)
        np.testing.assert_array_equal(true_max, [-1.5, -np.inf, -7.0])

    def test_neg_inf_initial_safe_on_integer_values(self):
        """-inf on integer values maps to the dtype minimum rather than
        raising (np.full with -inf cannot cast to int) or promoting."""
        ids = np.array([0, 0, 2])
        v = np.array([-3, -1, -7], dtype=np.int64)
        got = segment_max(v, ids, 3, initial=-np.inf)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(
            got, [-1, np.iinfo(np.int64).min, -7]
        )

    def test_neg_inf_initial_float32_stays_float32(self):
        v = np.array([-2.0, -4.0], dtype=np.float32)
        got = segment_max(v, np.array([1, 1]), 2, initial=-np.inf)
        assert got.dtype == np.float32
        np.testing.assert_array_equal(
            got, np.array([-np.inf, -2.0], dtype=np.float32)
        )


class TestSegmentReducer:
    def test_plan_reuse_many_reductions(self):
        rng = np.random.default_rng(3)
        ids = rng.integers(0, 40, size=300)
        red = SegmentReducer(ids, 40)
        for _ in range(3):
            v = rng.normal(size=(300, 3))
            np.testing.assert_allclose(red.sum(v), _add_at_reference(v, ids, 40),
                                       rtol=1e-12)
            s = rng.normal(size=300)
            np.testing.assert_allclose(
                red.max(s, initial=-np.inf),
                _max_at_reference(s, ids, 40, initial=-np.inf),
            )

    def test_assume_sorted_skips_permutation(self):
        ids = np.array([0, 0, 1, 4, 4, 4])
        red = SegmentReducer(ids, 6, assume_sorted=True)
        assert red.order is None
        v = np.arange(6, dtype=np.float64)
        np.testing.assert_allclose(red.sum(v), _add_at_reference(v, ids, 6))


class TestConservationAfterRefactor:
    def test_crksph_momentum_energy_at_roundoff(self):
        """The segment-reduction force assembly keeps the conservative
        symmetric-pair contract: total momentum and energy rates vanish to
        round-off."""
        from repro.core.sph import crksph_derivatives, get_kernel
        from repro.tree import neighbor_pairs

        rng = np.random.default_rng(17)
        n, box = 220, 9.0
        pos = rng.uniform(0, box, size=(n, 3))
        vel = rng.normal(scale=2.5, size=(n, 3))
        mass = rng.uniform(0.5, 2.0, size=n)
        u = rng.uniform(5.0, 20.0, size=n)
        h = np.full(n, 1.7 * box / n ** (1 / 3))
        kernel = get_kernel("wendland_c4")
        pi, pj = neighbor_pairs(pos, h, box=box)

        d = crksph_derivatives(pos, vel, mass, u, h, pi, pj, kernel, box=box)
        mom_rate = np.sum(mass[:, None] * d.accel, axis=0)
        e_rate = float(np.sum(mass * (np.einsum("na,na->n", vel, d.accel)
                                      + d.du_dt)))
        scale = float(np.sum(np.abs(mass[:, None] * d.accel)))
        assert np.all(np.abs(mom_rate) < 1e-11 * max(scale, 1.0))
        e_scale = float(np.sum(np.abs(mass * d.du_dt)))
        assert abs(e_rate) < 1e-10 * max(e_scale, 1.0)
