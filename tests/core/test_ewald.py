"""Ewald summation tests + the definitive force-split validation."""

import numpy as np
import pytest

from repro.constants import G_COSMO
from repro.core.gravity import (
    PMSolver,
    ewald_accelerations,
    recommended_cutoff,
    short_range_accelerations,
)
from repro.tree import neighbor_pairs


class TestEwaldReference:
    def test_close_pair_is_newtonian(self):
        box = 100.0
        pos = np.array([[49.0, 50.0, 50.0], [51.0, 50.0, 50.0]])
        mass = np.array([1e10, 1e10])
        a = ewald_accelerations(pos, mass, box)
        newton = G_COSMO * 1e10 / 4.0
        assert a[0, 0] == pytest.approx(newton, rel=1e-3)
        np.testing.assert_allclose(a[0], -a[1], rtol=1e-12, atol=1e-12)

    def test_momentum_conserved(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 10, (20, 3))
        mass = rng.uniform(1, 2, 20) * 1e9
        a = ewald_accelerations(pos, mass, 10.0)
        net = np.abs((mass[:, None] * a).sum(axis=0)).max()
        scale = np.abs(mass[:, None] * a).sum()
        assert net < 1e-12 * scale

    def test_truncation_converged(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 10, (15, 3))
        mass = rng.uniform(1, 2, 15) * 1e9
        a = ewald_accelerations(pos, mass, 10.0)
        a_hi = ewald_accelerations(pos, mass, 10.0, n_real=3, n_fourier=7)
        assert np.abs(a - a_hi).max() < 1e-9 * np.abs(a_hi).max()

    def test_alpha_independence(self):
        """The split parameter must not change the physical answer."""
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 10, (12, 3))
        mass = rng.uniform(1, 2, 12) * 1e9
        a1 = ewald_accelerations(pos, mass, 10.0, alpha=0.15,
                                 n_real=3, n_fourier=7)
        a2 = ewald_accelerations(pos, mass, 10.0, alpha=0.3,
                                 n_real=3, n_fourier=7)
        np.testing.assert_allclose(a1, a2, rtol=1e-6,
                                   atol=1e-9 * np.abs(a1).max())

    def test_uniform_lattice_zero_force(self):
        """A perfect lattice feels no net force by symmetry."""
        n = 4
        coords = (np.arange(n) + 0.5) * (8.0 / n)
        g = np.meshgrid(coords, coords, coords, indexing="ij")
        pos = np.stack([c.ravel() for c in g], axis=-1)
        mass = np.ones(len(pos)) * 1e9
        a = ewald_accelerations(pos, mass, 8.0)
        # scale: force from one neighbor at lattice spacing
        scale = G_COSMO * 1e9 / 2.0**2
        assert np.abs(a).max() < 1e-8 * scale


class TestForceSplitVsEwald:
    """The definitive completeness test: PM(long) + tree(short) must equal
    the true periodic (Ewald) force for a random particle cloud — the
    validation the paper's separation-of-scales design rests on."""

    def test_random_cloud_total_force(self):
        rng = np.random.default_rng(5)
        n_part, box, ngrid = 48, 20.0, 64
        pos = rng.uniform(0, box, (n_part, 3))
        mass = rng.uniform(1, 2, n_part) * 1e10
        r_split = 2.0 * box / ngrid
        softening = 1e-4
        cutoff = recommended_cutoff(r_split, tol=1e-5)

        solver = PMSolver(n=ngrid, box=box, r_split=r_split)
        acc_long = solver.accelerations(pos, mass, coeff=4 * np.pi * G_COSMO)
        pi, pj = neighbor_pairs(pos, np.full(n_part, cutoff), box=box)
        acc_short = short_range_accelerations(
            pos, mass, pi, pj, r_split=r_split, softening=softening, box=box
        )
        total = acc_long + acc_short

        exact = ewald_accelerations(pos, mass, box, softening=softening)
        err = np.linalg.norm(total - exact, axis=1)
        ref = np.linalg.norm(exact, axis=1)
        rel = err / np.maximum(ref, np.percentile(ref, 20))
        # PM mesh noise dominates the residual; typical TreePM accuracy
        assert np.median(rel) < 0.02
        assert np.percentile(rel, 95) < 0.10
