"""Subgrid astrophysics tests: cooling, SF, SN, AGN, enrichment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import YEAR_S, Z_SOLAR
from repro.core.sph.eos import IdealGasEOS
from repro.core.subgrid import (
    AGNModel,
    CoolingModel,
    MetalBudget,
    StarFormationModel,
    SupernovaModel,
    bondi_rate,
    eddington_rate,
    inject_yields,
    kernel_weights_for_sources,
    lambda_cooling,
    lock_metals_into_stars,
    mass_weighted_metallicity,
    uv_heating_rate,
)

MYR_S = 1.0e6 * YEAR_S


class TestCoolingFunction:
    def test_cold_gas_does_not_cool(self):
        lam = lambda_cooling(np.array([1.0e3]), np.array([0.0]))
        assert lam[0] < 1e-26

    def test_peak_near_1e5k(self):
        t = np.logspace(4, 8, 200)
        lam = lambda_cooling(t, np.zeros_like(t))
        tpeak = t[np.argmax(lam)]
        assert 5e4 < tpeak < 5e5

    def test_metals_enhance_cooling(self):
        t = np.array([2.0e5])
        lam0 = lambda_cooling(t, np.array([0.0]))
        lam1 = lambda_cooling(t, np.array([Z_SOLAR]))
        assert lam1[0] > 3.0 * lam0[0]

    def test_bremsstrahlung_tail(self):
        """At T >> 1e7, Lambda ~ sqrt(T)."""
        lam1 = lambda_cooling(np.array([1.0e8]), np.array([0.0]))
        lam2 = lambda_cooling(np.array([4.0e8]), np.array([0.0]))
        assert lam2[0] / lam1[0] == pytest.approx(2.0, rel=0.05)

    def test_uv_heating_peaks_midrange(self):
        assert uv_heating_rate(2.5) > uv_heating_rate(0.0)
        assert uv_heating_rate(2.5) > uv_heating_rate(8.0)


class TestCoolingModel:
    def setup_method(self):
        self.model = CoolingModel(enable_uv=False)
        self.eos = IdealGasEOS()

    def test_dense_hot_gas_cools(self):
        u = self.eos.internal_energy_from_temperature(1.0e6, mu=0.59)
        rho = np.array([1.0e14])  # overdense comoving Msun/Mpc^3
        rate = self.model.du_dt(np.array([u]), rho, np.array([0.0]))
        assert rate[0] < 0.0

    def test_denser_gas_cools_faster(self):
        u = self.eos.internal_energy_from_temperature(1.0e6, mu=0.59)
        r1 = self.model.du_dt(np.array([u]), np.array([1.0e13]), np.array([0.0]))
        r2 = self.model.du_dt(np.array([u]), np.array([1.0e14]), np.array([0.0]))
        # cooling per mass scales ~ n_H -> 10x denser cools ~10x faster
        assert r2[0] / r1[0] == pytest.approx(10.0, rel=0.05)

    def test_apply_respects_floor(self):
        u = np.array(
            [self.eos.internal_energy_from_temperature(5.0e4, mu=0.59)]
        )
        rho = np.array([1.0e16])  # very dense: cools hard
        out = self.model.apply(u, rho, np.array([0.01]), dt_seconds=1.0e16)
        t_out = self.eos.temperature(out, mu=0.59)
        assert t_out[0] >= self.model.t_floor * 0.999

    def test_apply_never_negative(self):
        u = np.array([1.0, 100.0, 1e4])
        rho = np.full(3, 1.0e15)
        out = self.model.apply(u, rho, np.zeros(3), dt_seconds=1e18)
        assert np.all(out > 0)

    def test_cooling_time_positive(self):
        u = self.eos.internal_energy_from_temperature(1e6, mu=0.59)
        tc = self.model.cooling_time(
            np.array([u]), np.array([1e14]), np.array([0.0])
        )
        assert 0 < tc[0] < np.inf


class TestStarFormation:
    def setup_method(self):
        self.sf = StarFormationModel()

    def test_cold_dense_gas_eligible(self):
        # rho ~ 1e7 * mean: n_H ~ 0.5 cm^-3 at a=1 for Planck
        rho_mean = 4.0e10
        rho = np.array([rho_mean * 1e7])
        eos = IdealGasEOS()
        u = np.array([eos.internal_energy_from_temperature(1.0e4, mu=0.6)])
        ok = self.sf.eligible(rho, u, a=1.0, rho_mean_comoving=rho_mean)
        assert ok[0]

    def test_hot_gas_not_eligible(self):
        rho_mean = 4.0e10
        rho = np.array([rho_mean * 1e7])
        eos = IdealGasEOS()
        u = np.array([eos.internal_energy_from_temperature(1.0e6, mu=0.6)])
        ok = self.sf.eligible(rho, u, a=1.0, rho_mean_comoving=rho_mean)
        assert not ok[0]

    def test_diffuse_gas_not_eligible(self):
        rho_mean = 4.0e10
        rho = np.array([rho_mean * 2.0])
        eos = IdealGasEOS()
        u = np.array([eos.internal_energy_from_temperature(1.0e4, mu=0.6)])
        assert not self.sf.eligible(rho, u, 1.0, rho_mean)[0]

    def test_probability_saturates(self):
        rho = np.array([1e18])
        p = self.sf.formation_probability(rho, dt_seconds=1e18, a=1.0)
        assert p[0] == pytest.approx(1.0, abs=1e-6)

    def test_probability_increases_with_dt(self):
        rho = np.array([1e17])
        p1 = self.sf.formation_probability(rho, 1e13, 1.0)
        p2 = self.sf.formation_probability(rho, 1e14, 1.0)
        assert p2[0] > p1[0]

    def test_stochastic_selection_rate(self):
        """Over many particles, the converted fraction matches p."""
        rng = np.random.default_rng(0)
        n = 20000
        rho_mean = 4.0e10
        rho = np.full(n, rho_mean * 1e7)
        eos = IdealGasEOS()
        u = np.full(n, eos.internal_energy_from_temperature(1e4, mu=0.6))
        dt = 3e14
        idx = self.sf.select_forming(rho, u, dt, 1.0, rho_mean, rng)
        p_expected = self.sf.formation_probability(rho[:1], dt, 1.0)[0]
        frac = len(idx) / n
        assert frac == pytest.approx(p_expected, rel=0.1)

    def test_dynamical_time_scaling(self):
        """t_dyn ~ rho^-1/2."""
        t1 = self.sf.dynamical_time(np.array([1e14]), 1.0)
        t2 = self.sf.dynamical_time(np.array([4e14]), 1.0)
        assert t1[0] / t2[0] == pytest.approx(2.0, rel=1e-6)


class TestSupernova:
    def test_due_after_delay(self):
        sn = SupernovaModel(delay_myr=10.0)
        ages = np.array([5.0, 10.0, 20.0])
        fired = np.array([False, False, True])
        due = sn.due(ages, fired)
        np.testing.assert_array_equal(due, [False, True, False])

    def test_energy_budget_magnitude(self):
        """1e51 erg per 100 Msun = 5.03e15 erg/g ~ 5.03e5 (km/s)^2."""
        sn = SupernovaModel()
        assert sn.energy_per_mass == pytest.approx(5.03e5, rel=0.01)

    def test_deposit_conserves_energy(self):
        sn = SupernovaModel()
        rng = np.random.default_rng(1)
        gas_mass = rng.uniform(1, 2, 20) * 1e8
        gas_u = np.full(20, 100.0)
        gas_z = np.zeros(20)
        star_mass = np.array([1e8])
        si, gi, w = (
            np.zeros(5, dtype=int),
            np.arange(5),
            np.full(5, 0.2),
        )
        new_u, new_z = sn.deposit(star_mass, w, gi, si, gas_mass, gas_u, gas_z)
        de = np.sum(gas_mass * (new_u - gas_u))
        assert de == pytest.approx(sn.energy_per_mass * star_mass[0], rel=1e-9)

    def test_deposit_metal_budget(self):
        sn = SupernovaModel(metal_yield=0.02)
        gas_mass = np.full(4, 1e9)
        gas_u = np.zeros(4)
        gas_z = np.zeros(4)
        star_mass = np.array([1e8])
        si, gi, w = np.zeros(4, dtype=int), np.arange(4), np.full(4, 0.25)
        _, new_z = sn.deposit(star_mass, w, gi, si, gas_mass, gas_u, gas_z)
        metal_mass = np.sum(gas_mass * new_z)
        assert metal_mass == pytest.approx(0.02 * 1e8, rel=1e-9)

    def test_kernel_weights_normalized_per_source(self):
        rng = np.random.default_rng(2)
        src = rng.uniform(0, 1, (3, 3))
        gas = rng.uniform(0, 1, (50, 3))
        si, gi, w = kernel_weights_for_sources(src, gas, radius=0.4, box=1.0)
        for s in range(3):
            assert w[si == s].sum() == pytest.approx(1.0, rel=1e-9)

    def test_isolated_source_couples_to_nearest(self):
        src = np.array([[0.5, 0.5, 0.5]])
        gas = np.array([[0.9, 0.9, 0.9], [0.52, 0.5, 0.5]])
        si, gi, w = kernel_weights_for_sources(src, gas, radius=0.001)
        assert len(gi) == 1 and gi[0] == 1
        assert w[0] == pytest.approx(1.0)


class TestAGN:
    def test_eddington_scales_linearly(self):
        e1 = eddington_rate(np.array([1e6]))
        e2 = eddington_rate(np.array([2e6]))
        assert e2[0] / e1[0] == pytest.approx(2.0, rel=1e-10)

    def test_salpeter_time(self):
        """Canonical Salpeter time ~ 45 Myr for eps_r = 0.1."""
        assert AGNModel.salpeter_time_myr(0.1) == pytest.approx(45.0, rel=0.05)

    def test_bondi_scales_m_squared(self):
        b1 = bondi_rate(np.array([1e6]), np.array([1e13]), np.array([100.0]))
        b2 = bondi_rate(np.array([2e6]), np.array([1e13]), np.array([100.0]))
        assert b2[0] / b1[0] == pytest.approx(4.0, rel=1e-10)

    def test_accretion_eddington_capped(self):
        agn = AGNModel(bondi_boost=1e12)
        m = np.array([1e7])
        rate = agn.accretion_rate(m, np.array([1e16]), np.array([10.0]))
        assert rate[0] == pytest.approx(eddington_rate(m, 0.1)[0], rel=1e-10)

    def test_growth_positive(self):
        agn = AGNModel()
        m_new, dm = agn.grow(
            np.array([1e6]), np.array([1e14]), np.array([50.0]), 10 * MYR_S
        )
        assert dm[0] > 0
        assert m_new[0] == pytest.approx(1e6 + dm[0])

    def test_feedback_energy_magnitude(self):
        """eps_r*eps_f*c^2 = 0.005 c^2 ~ 4.5e6 (km/s)^2 per Msun accreted."""
        agn = AGNModel()
        e = agn.feedback_energy(np.array([1.0]))
        assert e[0] == pytest.approx(0.005 * (2.9979e5) ** 2, rel=1e-3)

    def test_seeding_mask(self):
        agn = AGNModel(seed_halo_mass=1e11)
        halos = np.array([5e10, 2e11, 3e11])
        has = np.array([False, False, True])
        np.testing.assert_array_equal(
            agn.should_seed(halos, has), [False, True, False]
        )


class TestEnrichment:
    def test_budget_accounting(self):
        b = MetalBudget()
        b.gas_metals = 10.0
        b.stellar_metals = 5.0
        assert b.total == 15.0
        b.snapshot(a=0.5)
        assert b.history[0]["gas"] == 10.0

    def test_lock_metals(self):
        gm = np.array([2.0, 3.0, 4.0])
        gz = np.array([0.01, 0.02, 0.0])
        locked = lock_metals_into_stars(gm, gz, np.array([0, 1]))
        assert locked == pytest.approx(2.0 * 0.01 + 3.0 * 0.02)
        assert lock_metals_into_stars(gm, gz, np.array([], dtype=int)) == 0.0

    def test_inject_yields_conserves_metal_mass(self):
        gm = np.array([1e8, 2e8, 3e8])
        gz = np.zeros(3)
        inj = np.array([1e5, 2e5])
        new_z = inject_yields(gm, gz, np.array([0, 2]), inj)
        assert np.sum(gm * new_z) == pytest.approx(3e5, rel=1e-12)

    def test_metallicity_clipped(self):
        gm = np.array([1.0])
        new_z = inject_yields(gm, np.array([0.9]), np.array([0]), np.array([5.0]))
        assert new_z[0] == 1.0

    @given(
        z0=st.floats(0.0, 0.1),
        frac=st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_mass_weighted_metallicity_bounds(self, z0, frac):
        mass = np.array([1.0, 2.0])
        z = np.array([z0, z0 * frac])
        mz = mass_weighted_metallicity(mass, z)
        assert min(z) - 1e-12 <= mz <= max(z) + 1e-12

    def test_mass_weighted_empty(self):
        assert mass_weighted_metallicity(np.array([]), np.array([])) == 0.0


class TestStellarEvolution:
    def test_snia_dtd_normalization(self):
        """Integrating the full DTD gives n_per_msun events per Msun."""
        from repro.core.subgrid import SNIaModel

        snia = SNIaModel()
        total = snia.events_between(1.0, 0.0, 1.0e9)
        assert total == pytest.approx(snia.n_per_msun, rel=1e-10)

    def test_snia_no_events_before_tmin(self):
        from repro.core.subgrid import SNIaModel

        snia = SNIaModel(t_min_myr=40.0)
        assert snia.events_between(1e8, 0.0, 39.0) == 0.0

    def test_snia_t_inverse_shape(self):
        """Equal logarithmic age intervals host equal event counts."""
        from repro.core.subgrid import SNIaModel

        snia = SNIaModel()
        n1 = snia.events_between(1e8, 40.0, 400.0)
        n2 = snia.events_between(1e8, 400.0, 4000.0)
        assert n1 == pytest.approx(n2, rel=1e-10)

    def test_snia_energy_and_iron(self):
        from repro.core.subgrid import SNIaModel

        snia = SNIaModel()
        du = snia.specific_energy(np.array([1.0]), np.array([1e6]))
        # 1e51 erg into 1e6 Msun: 1e51/(1e6*1.989e33)/1e10 (km/s)^2 ~ 50
        assert du[0] == pytest.approx(50.3, rel=0.02)
        assert snia.iron_mass(np.array([10.0]))[0] == pytest.approx(7.0)

    def test_agb_return_monotone_and_bounded(self):
        from repro.core.subgrid import AGBModel

        agb = AGBModel()
        ages = np.linspace(0, 1.0e4, 40)
        f = agb.cumulative_return_fraction(ages)
        assert np.all(np.diff(f) >= 0)
        assert f[0] == 0.0
        assert f[-1] == pytest.approx(agb.return_fraction, rel=1e-10)

    def test_agb_incremental_consistency(self):
        from repro.core.subgrid import AGBModel

        agb = AGBModel()
        m = 1e9
        total = agb.mass_returned_between(m, 0.0, 5000.0)
        split = (agb.mass_returned_between(m, 0.0, 1000.0)
                 + agb.mass_returned_between(m, 1000.0, 5000.0))
        assert split == pytest.approx(total, rel=1e-12)

    def test_enrichment_history_budget(self):
        from repro.core.subgrid import enrichment_history

        hist = enrichment_history(1e9, np.array([100.0, 1000.0, 1.0e4]))
        assert np.all(np.diff(hist["snia_events"]) > 0)
        assert np.all(np.diff(hist["mass_returned_msun"]) > 0)
        # sensible magnitudes: ~1.3e6 SNIa and ~3.5e8 Msun returned in a Hubble time
        assert hist["snia_events"][-1] == pytest.approx(1.3e6, rel=1e-6)
        assert hist["mass_returned_msun"][-1] == pytest.approx(3.5e8, rel=1e-6)
