"""Device specs (Table I) and utilization-model calibration tests."""

import pytest

from repro.constants import (
    FRONTIER_E_UTIL_HIGHZ_PEAK,
    FRONTIER_E_UTIL_HIGHZ_SUSTAINED,
    FRONTIER_E_UTIL_LOWZ_SUSTAINED,
)
from repro.gpusim import (
    H100_SXM5,
    MI250X_GCD,
    PVC_TILE,
    SOLVER_KERNEL_MIX,
    peak_kernel,
    peak_utilization,
    sustained_utilization,
    table_i_rows,
)


class TestTableI:
    def test_peak_fp32_values(self):
        """Exact Table I values."""
        rows = dict(table_i_rows())
        assert rows["AMD MI250X (per GCD)"] == 23.9
        assert rows["Intel Max 1550 (per tile)"] == 22.5
        assert rows["NVIDIA SXM5 H100"] == 66.9

    def test_warp_widths(self):
        """Paper footnote: 32 threads on NVIDIA/Intel, 64 on AMD."""
        assert MI250X_GCD.warp_size == 64
        assert PVC_TILE.warp_size == 32
        assert H100_SXM5.warp_size == 32

    def test_roofline_caps_at_peak(self):
        assert MI250X_GCD.roofline_flops(1e9) == MI250X_GCD.peak_fp32_flops
        assert MI250X_GCD.roofline_flops(0.0) == 0.0

    def test_roofline_memory_bound_region(self):
        ai = 1.0
        assert MI250X_GCD.roofline_flops(ai) == pytest.approx(1.6e12)


class TestUtilizationCalibration:
    """The model must hit the Fig. 6 anchors."""

    def test_mix_fractions_sum_to_one(self):
        assert sum(k.time_fraction for k in SOLVER_KERNEL_MIX) == pytest.approx(1.0)

    def test_peak_kernel_is_crk_coefficients(self):
        """Paper Section V-B: the peak-FLOP kernel computes the high-order
        SPH correction coefficients."""
        assert peak_kernel().name == "crk_coefficients"

    def test_highz_peak_utilization_anchor(self):
        """~33% peak per-GPU utilization on Frontier hardware."""
        assert peak_utilization(MI250X_GCD) == pytest.approx(
            FRONTIER_E_UTIL_HIGHZ_PEAK, abs=0.01
        )

    def test_highz_sustained_utilization_anchor(self):
        """26.5% sustained at high redshift."""
        assert sustained_utilization(MI250X_GCD) == pytest.approx(
            FRONTIER_E_UTIL_HIGHZ_SUSTAINED, abs=0.01
        )

    def test_lowz_sustained_rises_with_clustering(self):
        """28% sustained at low redshift (denser work -> better efficiency)."""
        lowz = sustained_utilization(MI250X_GCD, work_boost=0.057)
        assert lowz == pytest.approx(FRONTIER_E_UTIL_LOWZ_SUSTAINED, abs=0.01)
        assert lowz > sustained_utilization(MI250X_GCD)

    def test_consistent_across_vendors(self):
        """Paper Fig. 6 left: sustained utilization consistent across the
        three platforms, slightly higher peak on NVIDIA."""
        s = [sustained_utilization(d) for d in (MI250X_GCD, PVC_TILE, H100_SXM5)]
        assert max(s) - min(s) < 0.03
        assert peak_utilization(H100_SXM5) > peak_utilization(MI250X_GCD)
        assert peak_utilization(H100_SXM5) > peak_utilization(PVC_TILE)

    def test_utilization_bounded(self):
        for d in (MI250X_GCD, PVC_TILE, H100_SXM5):
            assert 0.0 < sustained_utilization(d, work_boost=10.0) <= 1.0
