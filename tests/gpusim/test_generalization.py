"""Warp splitting beyond cosmology: MD and plasma kernels (paper IV-B2)."""

import numpy as np
import pytest

from repro.gpusim import (
    H100_SXM5,
    MI250X_GCD,
    coulomb_kernel,
    execute_leaf_pair_naive,
    execute_leaf_pair_warpsplit,
    lennard_jones_kernel,
)


class TestLennardJones:
    def setup_method(self):
        rng = np.random.default_rng(7)
        self.n = 48
        # two interleaved leaves from a perturbed lattice (MD-like density)
        base = rng.uniform(0, 4.0, (2 * self.n, 3))
        self.pos_i = base[: self.n]
        self.pos_j = base[self.n :]
        self.state = {"type": np.ones(self.n)}
        self.kern = lennard_jones_kernel(epsilon=1.0, sigma=0.3, r_cut=1.2)

    def direct(self):
        e_i = np.zeros(self.n)
        e_j = np.zeros(self.n)
        for j in range(self.n):
            d = self.pos_i - self.pos_j[j]
            r2 = np.maximum((d**2).sum(axis=1), 1e-24)
            s6 = (0.3**2 / r2) ** 3
            val = np.where(r2 > 1.2**2, 0.0, 4.0 * (s6**2 - s6))
            e_i += val
            e_j[j] += val.sum()
        return e_i, e_j

    @pytest.mark.parametrize("device", [MI250X_GCD, H100_SXM5])
    def test_matches_direct_sum(self, device):
        phi_i, phi_j, _ = execute_leaf_pair_warpsplit(
            self.kern, self.pos_i, self.state, self.pos_j, self.state, device
        )
        ref_i, ref_j = self.direct()
        np.testing.assert_allclose(phi_i, ref_i, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(phi_j, ref_j, rtol=1e-10, atol=1e-12)

    def test_matches_naive(self):
        phi_s, _, cs = execute_leaf_pair_warpsplit(
            self.kern, self.pos_i, self.state, self.pos_j, self.state,
            MI250X_GCD,
        )
        phi_n, _, cn = execute_leaf_pair_naive(
            self.kern, self.pos_i, self.state, self.pos_j, self.state,
            MI250X_GCD,
        )
        np.testing.assert_allclose(phi_s, phi_n, rtol=1e-10)
        assert cs.global_load_bytes < cn.global_load_bytes

    def test_cutoff_respected(self):
        far_j = self.pos_j + 100.0
        phi_i, _, _ = execute_leaf_pair_warpsplit(
            self.kern, self.pos_i, self.state, far_j, self.state, MI250X_GCD
        )
        np.testing.assert_allclose(phi_i, 0.0)


class TestCoulomb:
    def test_opposite_charges_attract(self):
        """Pair energy negative for opposite charges, positive for like."""
        kern = coulomb_kernel(k_e=1.0, softening=0.01)
        pos_i = np.array([[0.0, 0.0, 0.0]])
        pos_j = np.array([[1.0, 0.0, 0.0]])
        for qi, qj, sign in ((1.0, -1.0, -1), (1.0, 1.0, +1)):
            phi, _, _ = execute_leaf_pair_warpsplit(
                kern, pos_i, {"q": np.array([qi])},
                pos_j, {"q": np.array([qj])}, H100_SXM5,
            )
            assert np.sign(phi[0]) == sign

    def test_energy_symmetric(self):
        rng = np.random.default_rng(8)
        n = 30
        pos_i = rng.uniform(0, 1, (n, 3))
        pos_j = rng.uniform(2, 3, (n, 3))
        qi = {"q": rng.choice([-1.0, 1.0], n)}
        qj = {"q": rng.choice([-1.0, 1.0], n)}
        kern = coulomb_kernel(k_e=1.0, softening=0.05)
        phi_i, phi_j, _ = execute_leaf_pair_warpsplit(
            kern, pos_i, qi, pos_j, qj, MI250X_GCD
        )
        # symmetric reaction: total energy counted equally on both sides
        assert phi_i.sum() == pytest.approx(phi_j.sum(), rel=1e-12)
