"""Warp-splitting executor tests: correctness, coverage, traffic profile."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    H100_SXM5,
    MI250X_GCD,
    PVC_TILE,
    OpCounters,
    SeparablePairKernel,
    crk_coefficient_kernel,
    execute_leaf_pair_naive,
    execute_leaf_pair_warpsplit,
    gravity_potential_kernel,
    sph_density_kernel,
)


def direct_density(pos_i, pos_j, m_j, h):
    out = np.zeros(len(pos_i))
    for j in range(len(pos_j)):
        d = pos_i - pos_j[j]
        r = np.sqrt((d**2).sum(axis=1))
        q = np.clip(r / h, 0, 1)
        u = 1 - q
        w = np.where(
            r < h, 495 / (32 * np.pi) / h**3 * u**6 * (1 + 6 * q + 35 / 3 * q**2), 0
        )
        out += m_j[j] * w
    return out


def pair_count_kernel() -> SeparablePairKernel:
    """phi_i counts partners: verifies each (i, j) visited exactly once."""
    return SeparablePairKernel(
        name="pair_count",
        fields_i=(),
        fields_j=(),
        f_i=lambda s: 1.0,
        g_j=lambda s: 1.0,
        h_ij=lambda pi, pj, si, sj: np.ones(len(pi)),
        combine=lambda f, g, h: f * g * h,
    )


class TestCorrectness:
    @pytest.mark.parametrize("device", [MI250X_GCD, PVC_TILE, H100_SXM5])
    @pytest.mark.parametrize("ni,nj", [(5, 7), (32, 32), (37, 53), (128, 96)])
    def test_density_matches_direct(self, device, ni, nj):
        rng = np.random.default_rng(ni * 100 + nj)
        pos_i = rng.uniform(0, 1, (ni, 3))
        pos_j = rng.uniform(0, 1, (nj, 3))
        m = rng.uniform(1, 2, nj)
        k = sph_density_kernel(0.5)
        phi, _, _ = execute_leaf_pair_warpsplit(
            k, pos_i, {"h": np.full(ni, 0.5)}, pos_j, {"m": m}, device
        )
        np.testing.assert_allclose(phi, direct_density(pos_i, pos_j, m, 0.5),
                                   rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("device", [MI250X_GCD, H100_SXM5])
    def test_pair_coverage_exact(self, device):
        """Every (i, j) pair evaluated exactly once, odd sizes included."""
        for ni, nj in [(1, 1), (3, 65), (33, 31), (64, 64), (100, 17)]:
            phi, _, _ = execute_leaf_pair_warpsplit(
                pair_count_kernel(),
                np.zeros((ni, 3)),
                {},
                np.zeros((nj, 3)),
                {},
                device,
            )
            np.testing.assert_allclose(phi, nj)

    def test_symmetric_reaction_accumulated(self):
        """Pair-potential kernel: phi_j reaction equals direct j-side sum."""
        rng = np.random.default_rng(3)
        ni, nj = 40, 24
        pos_i = rng.uniform(0, 1, (ni, 3))
        pos_j = rng.uniform(2, 3, (nj, 3))  # disjoint: no self pairs
        mi = rng.uniform(1, 2, ni)
        mj = rng.uniform(1, 2, nj)
        k = gravity_potential_kernel(softening=0.1)
        phi_i, phi_j, _ = execute_leaf_pair_warpsplit(
            k, pos_i, {"m": mi}, pos_j, {"m": mj}, MI250X_GCD
        )
        # direct
        ref_i = np.zeros(ni)
        ref_j = np.zeros(nj)
        for j in range(nj):
            d = pos_i - pos_j[j]
            val = -mi * mj[j] / np.sqrt((d**2).sum(axis=1) + 0.01)
            ref_i += val
            ref_j[j] += val.sum()
        np.testing.assert_allclose(phi_i, ref_i, rtol=1e-12)
        np.testing.assert_allclose(phi_j, ref_j, rtol=1e-12)

    def test_naive_matches_warpsplit_result(self):
        rng = np.random.default_rng(4)
        ni, nj = 50, 60
        pos_i = rng.uniform(0, 1, (ni, 3))
        pos_j = rng.uniform(0, 1, (nj, 3))
        m = rng.uniform(1, 2, nj)
        k = sph_density_kernel(0.4)
        si = {"h": np.full(ni, 0.4)}
        sj = {"m": m}
        phi_split, _, _ = execute_leaf_pair_warpsplit(
            k, pos_i, si, pos_j, sj, MI250X_GCD
        )
        phi_naive, _, _ = execute_leaf_pair_naive(
            k, pos_i, si, pos_j, sj, MI250X_GCD
        )
        np.testing.assert_allclose(phi_split, phi_naive, rtol=1e-10)

    @given(ni=st.integers(1, 80), nj=st.integers(1, 80), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_property_pair_coverage(self, ni, nj, seed):
        phi, _, _ = execute_leaf_pair_warpsplit(
            pair_count_kernel(),
            np.zeros((ni, 3)),
            {},
            np.zeros((nj, 3)),
            {},
            PVC_TILE,
        )
        np.testing.assert_allclose(phi, nj)


class TestTrafficProfile:
    """Warp splitting's performance claims, measured on the executor."""

    def setup_method(self):
        rng = np.random.default_rng(7)
        self.ni = self.nj = 64
        self.pos_i = rng.uniform(0, 1, (self.ni, 3))
        self.pos_j = rng.uniform(0, 1, (self.nj, 3))
        self.k = sph_density_kernel(0.5)
        self.si = {"h": np.full(self.ni, 0.5)}
        self.sj = {"m": rng.uniform(1, 2, self.nj)}

    def test_split_reads_each_particle_once_per_tile_pair(self):
        _, _, c = execute_leaf_pair_warpsplit(
            self.k, self.pos_i, self.si, self.pos_j, self.sj, MI250X_GCD
        )
        # MI250X: half-warp 32 -> 2 i-tiles x 2 j-tiles; i read once per
        # i-tile, j once per (i-tile, j-tile)
        bytes_i = 4 * (3 + 1)
        bytes_j = 4 * (3 + 1)
        expected = self.ni * bytes_i + 2 * self.nj * bytes_j
        assert c.global_load_bytes == expected

    def test_split_moves_less_memory_than_naive(self):
        _, _, cs = execute_leaf_pair_warpsplit(
            self.k, self.pos_i, self.si, self.pos_j, self.sj, MI250X_GCD
        )
        _, _, cn = execute_leaf_pair_naive(
            self.k, self.pos_i, self.si, self.pos_j, self.sj, MI250X_GCD
        )
        assert cs.global_load_bytes < 0.5 * cn.global_load_bytes

    def test_split_uses_fewer_registers(self):
        assert self.k.register_estimate(split=True) < self.k.register_estimate(
            split=False
        )
        heavy = crk_coefficient_kernel(0.5)
        assert heavy.register_estimate(split=True) < heavy.register_estimate(
            split=False
        )

    def test_shuffles_replace_memory_traffic(self):
        _, _, cs = execute_leaf_pair_warpsplit(
            self.k, self.pos_i, self.si, self.pos_j, self.sj, MI250X_GCD
        )
        _, _, cn = execute_leaf_pair_naive(
            self.k, self.pos_i, self.si, self.pos_j, self.sj, MI250X_GCD
        )
        assert cs.shuffles > 0
        assert cn.shuffles == 0

    def test_atomics_per_leaf_not_per_pair(self):
        _, _, c = execute_leaf_pair_warpsplit(
            self.k, self.pos_i, self.si, self.pos_j, self.sj, MI250X_GCD
        )
        # one atomic per i particle (leaf-level reduction), not ni*nj
        assert c.atomics == self.ni

    def test_lane_efficiency_full_tiles(self):
        _, _, c = execute_leaf_pair_warpsplit(
            self.k, self.pos_i, self.si, self.pos_j, self.sj, MI250X_GCD
        )
        assert c.lane_efficiency == 1.0

    def test_lane_efficiency_padded_tiles(self):
        _, _, c = execute_leaf_pair_warpsplit(
            self.k,
            self.pos_i[:20],
            {"h": self.si["h"][:20]},
            self.pos_j[:20],
            {"m": self.sj["m"][:20]},
            MI250X_GCD,  # half-warp 32 > 20 -> padding waste
        )
        # 20 valid i lanes x 20 valid j partners out of 32 x 32 issued
        assert c.lane_efficiency == pytest.approx((20.0 / 32.0) ** 2)

    def test_flops_scale_with_pairs(self):
        _, _, c1 = execute_leaf_pair_warpsplit(
            self.k, self.pos_i[:32], {"h": self.si["h"][:32]},
            self.pos_j[:32], {"m": self.sj["m"][:32]}, MI250X_GCD,
        )
        _, _, c2 = execute_leaf_pair_warpsplit(
            self.k, self.pos_i, self.si, self.pos_j, self.sj, MI250X_GCD
        )
        # 4x the pairs -> ~4x the pair-stage flops (amortized stages differ)
        assert 3.0 < c2.flops / c1.flops < 5.0


class TestCounters:
    def test_fma_convention(self):
        c = OpCounters(fp32_add=10, fp32_mul=5, fp32_fma=20, fp32_transcendental=3)
        assert c.flops == 10 + 5 + 40 + 3

    def test_merge(self):
        a = OpCounters(fp32_add=1, shuffles=2)
        b = OpCounters(fp32_add=3, atomics=4)
        a.merge(b)
        assert a.fp32_add == 4 and a.shuffles == 2 and a.atomics == 4

    def test_arithmetic_intensity(self):
        c = OpCounters(fp32_add=100, global_load_bytes=40, global_store_bytes=10)
        assert c.arithmetic_intensity == pytest.approx(2.0)
        assert OpCounters(fp32_add=5).arithmetic_intensity == float("inf")

    def test_snapshot_contains_flops(self):
        c = OpCounters(fp32_fma=2)
        assert c.snapshot()["flops"] == 4
