"""Occupancy model tests."""

import pytest

from repro.gpusim import (
    H100_SXM5,
    MI250X_GCD,
    OccupancyModel,
    hydro_force_like_kernel,
    warp_splitting_occupancy_gain,
)


class TestOccupancyModel:
    def setup_method(self):
        self.model = OccupancyModel()

    def test_fewer_registers_more_warps(self):
        w_low = self.model.resident_warps(32, warp_size=64)
        w_high = self.model.resident_warps(128, warp_size=64)
        assert w_low > w_high

    def test_warp_cap(self):
        assert self.model.resident_warps(1, warp_size=32) == 32

    def test_register_file_arithmetic(self):
        # 64 regs x 64 lanes = 4096 regs/warp -> 65536/4096 = 16 warps
        assert self.model.resident_warps(64, warp_size=64) == 16
        # 32-wide warps fit twice as many
        assert self.model.resident_warps(64, warp_size=32) == 32

    def test_allocation_granularity(self):
        """Registers round up to multiples of 8."""
        assert self.model.resident_warps(57, warp_size=64) == \
            self.model.resident_warps(64, warp_size=64)

    def test_occupancy_bounds(self):
        for regs in (8, 64, 255):
            occ = self.model.occupancy(regs, 64)
            assert 0.0 < occ <= 1.0

    def test_latency_hiding_saturates(self):
        m = self.model
        assert m.latency_hiding_efficiency(m.saturation_occupancy) == 1.0
        assert m.latency_hiding_efficiency(1.0) == 1.0
        assert m.latency_hiding_efficiency(m.saturation_occupancy / 2) == 0.5

    def test_invalid_registers(self):
        with pytest.raises(ValueError):
            self.model.resident_warps(0, 64)


class TestWarpSplittingGain:
    def test_split_never_worse(self):
        kern = hydro_force_like_kernel(0.5)
        for device in (MI250X_GCD, H100_SXM5):
            gain = warp_splitting_occupancy_gain(kern, device)
            assert gain["split"]["registers"] < gain["naive"]["registers"]
            assert gain["split"]["occupancy"] >= gain["naive"]["occupancy"]
            assert gain["efficiency_gain"] >= 1.0

    def test_heavy_kernel_gains_on_wide_warps(self):
        """The 64-wide AMD wavefront is more register-file constrained, so
        the register saving buys real occupancy there."""
        kern = hydro_force_like_kernel(0.5)
        gain = warp_splitting_occupancy_gain(kern, MI250X_GCD)
        assert gain["split"]["resident_warps"] > gain["naive"]["resident_warps"]
