"""GPU-resident solver tests: whole interaction lists on the device."""

import numpy as np
import pytest

from repro.gpusim import (
    MI250X_GCD,
    GPUResidentSolver,
    sph_density_kernel,
)
from repro.tree import (
    build_chaining_mesh,
    build_interaction_list,
    build_leaf_set,
)


@pytest.fixture(scope="module")
def tree_setup():
    rng = np.random.default_rng(9)
    box = 4.0
    pos = rng.uniform(0, box, (600, 3))
    mass = rng.uniform(1, 2, 600)
    h = 0.4
    mesh = build_chaining_mesh(pos, 1.0, origin=0.0, extent=box, periodic=False)
    leaves = build_leaf_set(pos, mesh, max_leaf=48)
    ilist = build_interaction_list(leaves, mesh, pad=h, box=None)
    return box, pos, mass, h, leaves, ilist


def direct_density(pos, mass, h):
    out = np.zeros(len(pos))
    for j in range(len(pos)):
        d = pos - pos[j]
        r = np.sqrt((d**2).sum(axis=1))
        q = np.clip(r / h, 0, 1)
        u = 1 - q
        w = np.where(
            r < h, 495 / (32 * np.pi) / h**3 * u**6 * (1 + 6 * q + 35 / 3 * q**2), 0
        )
        out += mass[j] * w
    return out


class TestResidentSolver:
    def test_density_pass_matches_direct_sum(self, tree_setup):
        """Tree interaction lists + warp-split execution = exact direct sum
        (interaction lists cover all pairs; warp splitting is bit-exact)."""
        box, pos, mass, h, leaves, ilist = tree_setup
        solver = GPUResidentSolver(MI250X_GCD)
        solver.upload(pos, {"m": mass, "h": np.full(len(pos), h)})
        result = solver.run_interaction_list(
            sph_density_kernel(h), leaves, ilist
        )
        np.testing.assert_allclose(
            result.phi, direct_density(pos, mass, h), rtol=1e-10
        )

    def test_requires_upload(self, tree_setup):
        box, pos, mass, h, leaves, ilist = tree_setup
        solver = GPUResidentSolver(MI250X_GCD)
        with pytest.raises(RuntimeError, match="resident"):
            solver.run_interaction_list(sph_density_kernel(h), leaves, ilist)

    def test_transfer_accounting(self, tree_setup):
        """Upload once, run many passes: host traffic stays a small
        fraction of device bytes touched (the GPU-resident design)."""
        box, pos, mass, h, leaves, ilist = tree_setup
        solver = GPUResidentSolver(MI250X_GCD)
        h2d = solver.upload(pos, {"m": mass, "h": np.full(len(pos), h)})
        assert h2d == pos.nbytes + mass.nbytes + pos[:, 0].nbytes

        kern = sph_density_kernel(h)
        device_bytes = 0
        for _ in range(5):  # five subcycles, no re-upload
            res = solver.run_interaction_list(kern, leaves, ilist,
                                              download=False)
            device_bytes += res.counters.bytes_moved
        # one final download
        res = solver.run_interaction_list(kern, leaves, ilist)
        device_bytes += res.counters.bytes_moved
        assert solver.transfer_fraction(device_bytes) < 0.2

    def test_device_side_field_update(self, tree_setup):
        """update_field changes results without any host transfer."""
        box, pos, mass, h, leaves, ilist = tree_setup
        solver = GPUResidentSolver(MI250X_GCD)
        solver.upload(pos, {"m": mass, "h": np.full(len(pos), h)})
        kern = sph_density_kernel(h)
        r1 = solver.run_interaction_list(kern, leaves, ilist, download=False)
        h2d_before = solver.total_h2d_bytes
        solver.update_field("m", mass * 2.0)
        r2 = solver.run_interaction_list(kern, leaves, ilist, download=False)
        assert solver.total_h2d_bytes == h2d_before  # no new upload
        np.testing.assert_allclose(r2.phi, 2.0 * r1.phi, rtol=1e-12)

    def test_active_leaf_filtering_reduces_work(self, tree_setup):
        box, pos, mass, h, leaves, ilist = tree_setup
        solver = GPUResidentSolver(MI250X_GCD)
        solver.upload(pos, {"m": mass, "h": np.full(len(pos), h)})
        kern = sph_density_kernel(h)
        active = np.zeros(leaves.n_leaves, dtype=bool)
        active[: leaves.n_leaves // 4] = True
        full = solver.run_interaction_list(kern, leaves, ilist)
        part = solver.run_interaction_list(kern, leaves, ilist,
                                           active_leaves=active)
        assert part.n_leaf_pairs < full.n_leaf_pairs
        assert part.counters.flops < full.counters.flops
        # inactive-leaf particles receive nothing
        inactive_particles = np.concatenate(
            [leaves.particles_in_leaf(l) for l in range(leaves.n_leaves)
             if not active[l]]
        )
        np.testing.assert_allclose(part.phi[inactive_particles], 0.0)

    def test_utilization_estimate(self, tree_setup):
        box, pos, mass, h, leaves, ilist = tree_setup
        solver = GPUResidentSolver(MI250X_GCD)
        solver.upload(pos, {"m": mass, "h": np.full(len(pos), h)})
        res = solver.run_interaction_list(sph_density_kernel(h), leaves, ilist)
        # if the device ran at 30% of peak, this wall time would result:
        wall = res.counters.flops / (0.3 * MI250X_GCD.peak_fp32_flops)
        assert res.utilization(MI250X_GCD, wall) == pytest.approx(0.3)
        assert res.utilization(MI250X_GCD, 0.0) == 0.0
