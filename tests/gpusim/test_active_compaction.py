"""Mixed-rung lane activity: predication vs active-particle compaction."""

import numpy as np
import pytest

from repro.gpusim import (
    H100_SXM5,
    MI250X_GCD,
    GPUResidentSolver,
    OpCounters,
    active_compaction_stats,
    execute_leaf_pair_warpsplit,
    sph_density_kernel,
)
from repro.tree import (
    build_chaining_mesh,
    build_interaction_list,
    build_leaf_set,
)


def _leaf_setup(ni=96, nj=80, seed=2):
    rng = np.random.default_rng(seed)
    pos_i = rng.uniform(0, 1, (ni, 3))
    pos_j = rng.uniform(0, 1, (nj, 3))
    state_i = {"h": np.full(ni, 0.5)}
    state_j = {"m": rng.uniform(1, 2, nj)}
    return pos_i, state_i, pos_j, state_j


class TestExecutorActiveLanes:
    @pytest.mark.parametrize("device", [MI250X_GCD, H100_SXM5])
    def test_compaction_matches_predication_to_roundoff(self, device):
        """Compaction repacks lanes (permuting each lane's rotation order)
        so it agrees with predication to roundoff; both are deterministic
        and leave inactive rows exactly zero."""
        pos_i, si, pos_j, sj = _leaf_setup()
        kern = sph_density_kernel(0.5)
        rng = np.random.default_rng(7)
        active = rng.random(len(pos_i)) < 0.3
        phi_p, _, _ = execute_leaf_pair_warpsplit(
            kern, pos_i, si, pos_j, sj, device, active_i=active
        )
        phi_c, _, _ = execute_leaf_pair_warpsplit(
            kern, pos_i, si, pos_j, sj, device, active_i=active, compact=True
        )
        np.testing.assert_allclose(phi_p, phi_c, rtol=1e-13, atol=1e-14)
        assert np.all(phi_p[~active] == 0.0)
        assert np.all(phi_c[~active] == 0.0)
        # determinism: a repeated compacted run is bit-identical to itself
        phi_c2, _, _ = execute_leaf_pair_warpsplit(
            kern, pos_i, si, pos_j, sj, device, active_i=active, compact=True
        )
        assert np.array_equal(phi_c, phi_c2)

    def test_active_rows_match_full_evaluation(self):
        """Predicated/compacted active rows equal the all-active result on
        those rows bit-for-bit (accumulation order is per-lane)."""
        pos_i, si, pos_j, sj = _leaf_setup()
        kern = sph_density_kernel(0.5)
        active = np.zeros(len(pos_i), dtype=bool)
        active[10:40] = True
        full, _, _ = execute_leaf_pair_warpsplit(
            kern, pos_i, si, pos_j, sj, MI250X_GCD
        )
        pred, _, _ = execute_leaf_pair_warpsplit(
            kern, pos_i, si, pos_j, sj, MI250X_GCD, active_i=active
        )
        assert np.array_equal(pred[active], full[active])

    def test_predication_wastes_issue_compaction_does_not(self):
        """Clustered sparse activity: predication issues every tile with
        most lanes dead; compaction issues only the dense active tiles."""
        pos_i, si, pos_j, sj = _leaf_setup(ni=128)
        kern = sph_density_kernel(0.5)
        half = MI250X_GCD.warp_size // 2
        active = np.zeros(len(pos_i), dtype=bool)
        active[:half] = True  # one dense tile's worth out of four

        c_pred = OpCounters()
        execute_leaf_pair_warpsplit(
            kern, pos_i, si, pos_j, sj, MI250X_GCD, c_pred, active_i=active
        )
        c_comp = OpCounters()
        execute_leaf_pair_warpsplit(
            kern, pos_i, si, pos_j, sj, MI250X_GCD, c_comp,
            active_i=active, compact=True,
        )
        # same useful work, fewer issued lanes, higher lane efficiency
        assert c_comp.active_lane_ops == c_pred.active_lane_ops
        assert c_comp.issued_lane_ops < c_pred.issued_lane_ops
        assert c_comp.lane_efficiency > c_pred.lane_efficiency
        # 1 active tile of 4 -> predication issues ~4x the lanes
        assert c_pred.issued_lane_ops == pytest.approx(
            4 * c_comp.issued_lane_ops
        )
        # compaction also skips the inactive tiles' global reads
        assert c_comp.global_load_bytes < c_pred.global_load_bytes

    def test_all_active_degenerates_to_plain_execution(self):
        pos_i, si, pos_j, sj = _leaf_setup()
        kern = sph_density_kernel(0.5)
        c0, c1 = OpCounters(), OpCounters()
        phi0, _, _ = execute_leaf_pair_warpsplit(
            kern, pos_i, si, pos_j, sj, MI250X_GCD, c0
        )
        phi1, _, _ = execute_leaf_pair_warpsplit(
            kern, pos_i, si, pos_j, sj, MI250X_GCD, c1,
            active_i=np.ones(len(pos_i), dtype=bool), compact=True,
        )
        assert np.array_equal(phi0, phi1)
        assert c0.issued_lane_ops == c1.issued_lane_ops


class TestCompactionStats:
    def test_issue_accounting(self):
        # warp 64 -> half 32; leaves: 64 total/8 active, 32/32, 40/0
        s = active_compaction_stats([64, 32, 40], [8, 32, 0], warp_size=64)
        # leaf 3 is fully inactive: skipped by both schemes
        assert s["issued_tiles_predicated"] == 2 + 1
        assert s["issued_tiles_compacted"] == 1 + 1
        assert s["issue_reduction"] == pytest.approx(1.5)
        assert s["lane_occupancy_predicated"] == pytest.approx(40 / 96)
        assert s["lane_occupancy_compacted"] == pytest.approx(40 / 64)

    def test_validation(self):
        with pytest.raises(ValueError, match="align"):
            active_compaction_stats([4, 4], [1], warp_size=64)
        with pytest.raises(ValueError, match="exceed"):
            active_compaction_stats([4], [5], warp_size=64)

    def test_matches_executor_tile_issue(self):
        """The analytic model agrees with the executor's issued-lane count
        for a single leaf pair (tiles x partners x half lanes)."""
        ni, nj = 96, 64
        pos_i, si, pos_j, sj = _leaf_setup(ni=ni, nj=nj)
        kern = sph_density_kernel(0.5)
        half = MI250X_GCD.warp_size // 2
        active = np.zeros(ni, dtype=bool)
        active[: half + 3] = True  # 2 compacted tiles vs 3 predicated

        stats = active_compaction_stats([ni], [int(active.sum())],
                                        warp_size=MI250X_GCD.warp_size)
        n_tiles_j = -(-nj // half)
        for compact, key in ((False, "issued_tiles_predicated"),
                             (True, "issued_tiles_compacted")):
            c = OpCounters()
            execute_leaf_pair_warpsplit(
                kern, pos_i, si, pos_j, sj, MI250X_GCD, c,
                active_i=active, compact=compact,
            )
            assert c.issued_lane_ops == stats[key] * n_tiles_j * half * half


class TestResidentActiveParticles:
    @pytest.fixture(scope="class")
    def tree_setup(self):
        rng = np.random.default_rng(9)
        box = 4.0
        # coarse mesh -> ~100-particle leaves spanning several half-warp
        # tiles, so predication/compaction issue different tile counts
        pos = rng.uniform(0, box, (800, 3))
        mass = rng.uniform(1, 2, 800)
        h = 0.4
        mesh = build_chaining_mesh(pos, 2.0, origin=0.0, extent=box,
                                   periodic=False)
        leaves = build_leaf_set(pos, mesh, max_leaf=128)
        ilist = build_interaction_list(leaves, mesh, pad=h, box=None)
        return pos, mass, h, leaves, ilist

    def test_active_particles_bitidentical_and_cheaper(self, tree_setup):
        pos, mass, h, leaves, ilist = tree_setup
        solver = GPUResidentSolver(MI250X_GCD)
        solver.upload(pos, {"m": mass, "h": np.full(len(pos), h)})
        kern = sph_density_kernel(h)
        rng = np.random.default_rng(1)
        active = rng.random(len(pos)) < 0.2

        full = solver.run_interaction_list(kern, leaves, ilist)
        pred = solver.run_interaction_list(
            kern, leaves, ilist, active_particles=active
        )
        comp = solver.run_interaction_list(
            kern, leaves, ilist, active_particles=active, compact=True
        )
        # predication keeps lane slots: active rows equal the full run
        # bit-for-bit; compaction repacks and agrees to roundoff
        assert np.array_equal(pred.phi[active], full.phi[active])
        np.testing.assert_allclose(comp.phi, pred.phi, rtol=1e-13, atol=1e-14)
        assert np.all(pred.phi[~active] == 0.0)
        assert np.all(comp.phi[~active] == 0.0)
        assert comp.counters.issued_lane_ops < pred.counters.issued_lane_ops
        assert comp.counters.lane_efficiency > pred.counters.lane_efficiency

    def test_index_array_equivalent_to_mask(self, tree_setup):
        pos, mass, h, leaves, ilist = tree_setup
        solver = GPUResidentSolver(MI250X_GCD)
        solver.upload(pos, {"m": mass, "h": np.full(len(pos), h)})
        kern = sph_density_kernel(h)
        idx = np.arange(0, len(pos), 3)
        mask = np.zeros(len(pos), dtype=bool)
        mask[idx] = True
        a = solver.run_interaction_list(kern, leaves, ilist,
                                        active_particles=idx, compact=True)
        b = solver.run_interaction_list(kern, leaves, ilist,
                                        active_particles=mask, compact=True)
        assert np.array_equal(a.phi, b.phi)
