"""Simulated-clock campaign schedule export (the Perfetto timeline)."""

import pytest

from repro.observe.clock import SIM_PID
from repro.observe.export import load_chrome_trace, slice_intervals
from repro.perfmodel.campaign import (
    CampaignModel,
    export_schedule,
    schedule_events,
)


@pytest.fixture(scope="module")
def result():
    return CampaignModel().run()


class TestScheduleEvents:
    def test_one_step_span_per_pm_step(self, result):
        events = schedule_events(result)
        steps = [e for e in events if e.name == "step"]
        assert len(steps) == len(result.steps) == 625
        assert all(e.pid == SIM_PID and e.ph == "X" for e in steps)

    def test_steps_tile_the_simulated_clock(self, result):
        steps = [e for e in schedule_events(result) if e.name == "step"]
        t = 0.0
        for ev in steps:
            assert ev.ts == pytest.approx(t, rel=1e-9, abs=1e-6)
            t = ev.ts + ev.dur
        assert t == pytest.approx(result.wallclock_hours * 3600.0, rel=1e-9)

    def test_components_nest_inside_their_step(self, result):
        events = schedule_events(result)
        steps = {e.seq: e for e in events if e.name == "step"}
        comps = [e for e in events if e.name != "step"]
        assert comps, "no component spans"
        # every component is inside some step interval on the same track
        step_iv = [(s.ts, s.ts + s.dur) for s in steps.values()]
        for c in comps[:200]:
            assert c.depth == 1
            assert any(lo - 1e-6 <= c.ts and c.ts + c.dur <= hi + 1e-6
                       for lo, hi in step_iv)

    def test_component_names_are_registered_phases(self, result):
        from repro.observe.taxonomy import SPAN_NAMES

        names = {e.name for e in schedule_events(result)}
        assert names <= SPAN_NAMES

    def test_io_spans_only_on_checkpoint_steps(self, result):
        events = schedule_events(result)
        io_spans = [e for e in events if e.name == "io"]
        expected = sum(1 for s in result.steps if s.t_io > 0)
        assert len(io_spans) == expected


class TestExportRoundTrip:
    def test_export_loads_in_perfetto_shape(self, result, tmp_path):
        path = str(tmp_path / "model_trace.json")
        doc = export_schedule(result, path)
        loaded = load_chrome_trace(path)
        assert loaded["traceEvents"] == doc["traceEvents"]
        iv = slice_intervals(loaded, "step")
        assert (SIM_PID, 1) in iv
        assert len(iv[(SIM_PID, 1)]) == 625
        # named track metadata present
        thread_meta = [e for e in loaded["traceEvents"]
                       if e.get("ph") == "M" and e.get("name") == "thread_name"
                       and e.get("pid") == SIM_PID]
        assert any("campaign schedule" in e["args"]["name"]
                   for e in thread_meta)
