"""Ensemble-planning tests (paper §VII implications)."""

import numpy as np
import pytest

from repro.constants import FRONTIER_E_PARTICLES
from repro.perfmodel import (
    flagship_vs_ensemble_tradeoff,
    member_cost_node_hours,
    plan_ensemble,
)


class TestMemberCost:
    def test_flagship_cost_matches_campaign(self):
        cost = member_cost_node_hours(FRONTIER_E_PARTICLES, hydro=True)
        assert cost == pytest.approx(1.77e6, rel=0.05)

    def test_cost_scales_linearly_with_particles(self):
        c1 = member_cost_node_hours(FRONTIER_E_PARTICLES)
        c2 = member_cost_node_hours(FRONTIER_E_PARTICLES / 8)
        assert c1 / c2 == pytest.approx(8.0, rel=1e-6)

    def test_gravity_only_cheaper(self):
        ch = member_cost_node_hours(FRONTIER_E_PARTICLES, hydro=True)
        cg = member_cost_node_hours(FRONTIER_E_PARTICLES, hydro=False)
        assert 14.0 < ch / cg < 18.0


class TestPlanning:
    def test_budget_respected(self):
        budget = 5.0e6
        plan = plan_ensemble(budget, FRONTIER_E_PARTICLES / 8)
        assert plan.total_node_hours <= budget * 0.95 + 1e-6
        assert plan.n_members >= 1

    def test_more_members_at_lower_resolution(self):
        budget = 1.0e7
        big = plan_ensemble(budget, FRONTIER_E_PARTICLES)
        small = plan_ensemble(budget, FRONTIER_E_PARTICLES / 64)
        assert small.n_members > 8 * big.n_members

    def test_covariance_precision_improves_with_members(self):
        budget = 2.0e7
        plan = plan_ensemble(budget, FRONTIER_E_PARTICLES / 64)
        assert plan.n_members > 25
        few = plan_ensemble(budget, FRONTIER_E_PARTICLES / 8)
        assert plan.covariance_precision() < few.covariance_precision()

    def test_too_few_members_infinite_covariance_error(self):
        plan = plan_ensemble(2.0e6, FRONTIER_E_PARTICLES)
        assert plan.n_members <= 1
        assert plan.covariance_precision() == float("inf")

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            plan_ensemble(0.0, 1e12)

    def test_tradeoff_table(self):
        out = flagship_vs_ensemble_tradeoff(2.0e7)
        assert out["flagship"]["members"] < out["eighth"]["members"]
        assert out["eighth"]["members"] < out["64th"]["members"]
        assert np.isfinite(out["64th"]["covariance_precision"])
