"""Performance-portability metric tests."""

import pytest

from repro.perfmodel import (
    performance_portability,
    portability_verdict,
    solver_portability,
)


class TestPPMetric:
    def test_uniform_efficiency(self):
        assert performance_portability([0.3, 0.3, 0.3]) == pytest.approx(0.3)

    def test_harmonic_mean_penalizes_stragglers(self):
        pp = performance_portability([0.9, 0.9, 0.1])
        arith = (0.9 + 0.9 + 0.1) / 3
        assert pp < arith
        assert pp == pytest.approx(3 / (1 / 0.9 + 1 / 0.9 + 1 / 0.1))

    def test_zero_platform_zeroes_pp(self):
        assert performance_portability([0.5, 0.0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            performance_portability([])
        with pytest.raises(ValueError):
            performance_portability([1.5])


class TestSolverPortability:
    def test_crkhacc_is_portable(self):
        """The paper's claim: consistent efficiency across all three
        vendors -> PP close to the best single platform."""
        res = solver_portability(kind="sustained")
        best = max(res["efficiencies"].values())
        assert res["pp"] > 0.9 * best
        assert "portable" in portability_verdict(res["pp"], best)
        assert set(res["efficiencies"]) == {"AMD", "Intel", "NVIDIA"}

    def test_peak_portability(self):
        res = solver_portability(kind="peak")
        assert 0.3 < res["pp"] < 0.36  # ~33% peak with small vendor spread

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            solver_portability(kind="typical")

    def test_verdicts(self):
        assert "not portable" in portability_verdict(0.0, 0.5)
        assert "poorly" in portability_verdict(0.1, 0.5)
