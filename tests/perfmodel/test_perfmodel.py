"""Performance-model tests: every paper anchor the model must reproduce."""

import numpy as np
import pytest

from repro.constants import (
    FRONTIER_E_GPU_RESIDENCY,
    FRONTIER_E_PARTICLES_PER_SEC,
    FRONTIER_E_PEAK_PFLOPS,
    FRONTIER_E_SUSTAINED_PFLOPS,
    FRONTIER_E_TTS_FRACTIONS,
    FRONTIER_E_WALLCLOCK_HOURS,
)
from repro.gpusim import MI250X_GCD
from repro.perfmodel import (
    CampaignModel,
    capability_leap_factor,
    clustering_amplitude,
    data_imbalance,
    figure4_table,
    frontier,
    hydro_vs_gravity_cost_ratio,
    landscape_catalog,
    machine_flop_rates,
    matching_resolution_elements,
    rank_utilization_samples,
    strong_efficiency,
    subcycle_depth,
    weak_efficiency,
    weak_scaling_rate,
)
from repro.perfmodel.landscape import FRONTIER_E, HYDRO_SIMULATIONS


class TestMachine:
    def test_frontier_theoretical_peak(self):
        """9,000 nodes x 8 GCDs x 23.9 TF = 1.72 EFLOPs FP32 (paper V-A)."""
        m = frontier()
        assert m.peak_fp32_eflops == pytest.approx(1.7208, rel=1e-3)
        assert m.n_ranks == 72000

    def test_aggregate_nvme_bandwidth(self):
        """36 TB/s aggregate node-local write bandwidth (paper V-A)."""
        assert frontier().aggregate_nvme_write_tbps == pytest.approx(36.0)

    def test_subset(self):
        m = frontier().subset(128)
        assert m.n_ranks == 1024
        assert m.device is MI250X_GCD


class TestWorkload:
    def test_clustering_monotone(self):
        a = np.linspace(0.02, 1.0, 50)
        c = [clustering_amplitude(x) for x in a]
        assert all(np.diff(c) > 0)
        assert c[0] < 0.01 and c[-1] > 0.9

    def test_data_imbalance_reaches_two(self):
        """Paper VI-B: imbalance grew to nearly a factor of two."""
        assert data_imbalance(0.02) == pytest.approx(1.0, abs=0.02)
        assert data_imbalance(1.0) == pytest.approx(2.0, abs=0.1)

    def test_subcycle_depth_thousands_at_low_z(self):
        """Paper IV-A: thousands of substeps per PM step at late times."""
        assert 2 ** subcycle_depth(1.0) >= 2048
        assert 2 ** subcycle_depth(0.05) <= 8

    def test_utilization_distribution_broadens_at_low_z(self):
        hz = rank_utilization_samples(MI250X_GCD, a=0.1, n_ranks=9000, seed=1)
        lz = rank_utilization_samples(MI250X_GCD, a=1.0, n_ranks=9000, seed=1)
        assert lz.std() > 2.0 * hz.std()
        assert lz.mean() > hz.mean()  # low-z utilization improves

    def test_flat_mode_tightens_distribution_same_mean(self):
        """Fig. 6: 'low-z Flat' removes timestep variability but keeps the
        average performance — adaptivity costs nothing."""
        native = rank_utilization_samples(MI250X_GCD, a=1.0, n_ranks=9000, seed=2)
        flat = rank_utilization_samples(
            MI250X_GCD, a=1.0, n_ranks=9000, seed=2, flat=True
        )
        assert flat.std() < 0.25 * native.std()
        assert flat.mean() == pytest.approx(native.mean(), rel=0.02)

    def test_highz_sustained_mean(self):
        hz = rank_utilization_samples(MI250X_GCD, a=0.1, n_ranks=20000, seed=3)
        assert hz.mean() == pytest.approx(0.265, abs=0.01)


class TestScaling:
    def test_anchor_efficiencies(self):
        """92% strong / 95% weak at 9,000 nodes (paper VI-A)."""
        assert float(weak_efficiency(9000)) == pytest.approx(0.95, abs=1e-6)
        assert float(strong_efficiency(9000)) == pytest.approx(0.92, abs=1e-6)

    def test_anchor_particle_rate(self):
        assert float(weak_scaling_rate(9000)) == pytest.approx(
            FRONTIER_E_PARTICLES_PER_SEC, rel=1e-6
        )

    def test_efficiency_monotone_decreasing(self):
        nodes = np.array([128, 256, 512, 1024, 2048, 4096, 9000])
        assert np.all(np.diff(weak_efficiency(nodes)) < 0)
        assert np.all(np.diff(strong_efficiency(nodes)) < 0)
        assert float(weak_efficiency(128)) == 1.0

    def test_weak_rate_nearly_linear(self):
        r = weak_scaling_rate(np.array([128, 9000]))
        # ideal would be 9000/128 = 70.3x; with 95% efficiency ~66.8x
        assert r[1] / r[0] == pytest.approx(70.3 * 0.95, rel=0.01)

    def test_strong_time_shrinks(self):
        table = figure4_table()
        times = [p.strong_seconds_per_step for p in table]
        assert all(np.diff(times) < 0)

    def test_machine_rate_anchors(self):
        """513.1 peak / 420.5 sustained PFLOPs."""
        rates = machine_flop_rates()
        assert rates["peak_pflops"] == pytest.approx(
            FRONTIER_E_PEAK_PFLOPS, rel=0.005
        )
        assert rates["sustained_pflops"] == pytest.approx(
            FRONTIER_E_SUSTAINED_PFLOPS, rel=0.005
        )


class TestCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return CampaignModel().run()

    def test_wallclock_and_node_hours(self, result):
        assert result.wallclock_hours == pytest.approx(
            FRONTIER_E_WALLCLOCK_HOURS, rel=0.02
        )
        assert result.node_hours == pytest.approx(1.75e6, rel=0.03)

    def test_tts_fractions(self, result):
        for key, target in FRONTIER_E_TTS_FRACTIONS.items():
            assert result.fractions[key] == pytest.approx(target, abs=0.006), key

    def test_gpu_residency(self, result):
        assert result.gpu_resident_fraction == pytest.approx(
            FRONTIER_E_GPU_RESIDENCY, abs=0.01
        )

    def test_total_data_exceeds_100_pb(self, result):
        assert result.total_data_pb > 100.0
        assert result.science_data_pb == pytest.approx(12.0, rel=0.05)

    def test_effective_io_bandwidth_beats_pfs_peak(self, result):
        """5.45 TB/s effective vs 4.6 TB/s Orion peak."""
        assert result.effective_io_tbps > 4.6
        assert result.effective_io_tbps == pytest.approx(5.45, rel=0.15)

    def test_io_hours(self, result):
        assert result.io_hours == pytest.approx(5.1, rel=0.15)

    def test_cumulative_curves_shapes(self, result):
        """Fig. 5 top: short-range cumulative accelerates; long-range is
        linear in step."""
        cshort = result.cumulative("short")
        clong = result.cumulative("long")
        n = len(cshort)
        # late-half slope much steeper than early-half for short-range
        early = cshort[n // 4] - cshort[0]
        late = cshort[-1] - cshort[-n // 4]
        assert late > 3.0 * early
        # long-range linear: equal quarters
        lq1 = clong[n // 4] - clong[0]
        lq4 = clong[-1] - clong[-n // 4]
        assert lq4 == pytest.approx(lq1, rel=0.05)

    def test_nvme_bandwidth_declines_with_imbalance(self, result):
        """Fig. 5 bottom: effective NVMe bandwidth halves by run end."""
        bw = [s.nvme_bw_tbps for s in result.steps]
        assert bw[-1] == pytest.approx(bw[0] / 2.0, rel=0.15)

    def test_pfs_bandwidth_in_paper_envelope(self, result):
        bw = np.array([s.pfs_bw_tbps for s in result.steps])
        assert np.median(bw) > 0.5
        assert bw.max() <= 4.6

    def test_gravity_only_ratio(self):
        r = hydro_vs_gravity_cost_ratio()
        assert r["gravity_only_hours"] == pytest.approx(12.0, rel=0.1)
        assert 14.0 < r["ratio"] < 18.0


class TestLandscape:
    def test_frontier_e_breaks_trillion_barrier(self):
        assert FRONTIER_E.resolution_elements > 1.0e12
        for s in HYDRO_SIMULATIONS:
            assert s.resolution_elements < 2.0e11

    def test_capability_leap_at_least_15x(self):
        assert capability_leap_factor() > 15.0

    def test_finer_resolution_than_largest_volume_hydro(self):
        """Frontier-E beats the two largest-volume hydro sims on mass
        resolution (lower volume-per-element)."""
        by_volume = sorted(HYDRO_SIMULATIONS, key=lambda s: -s.box_gpc)
        for s in by_volume[:2]:
            assert FRONTIER_E.mass_resolution_proxy < s.mass_resolution_proxy

    def test_matching_resolution_line(self):
        """The dotted line passes through the Frontier-E point."""
        val = matching_resolution_elements(FRONTIER_E.box_gpc)
        assert val == pytest.approx(FRONTIER_E.resolution_elements)
        assert matching_resolution_elements(2.35) == pytest.approx(
            FRONTIER_E.resolution_elements / 8.0
        )

    def test_catalog_complete(self):
        cat = landscape_catalog()
        names = {s.name for s in cat}
        assert {"FLAMINGO", "MillenniumTNG", "Magneticum", "Euclid Flagship",
                "Last Journey", "Uchuu", "Frontier-E"} <= names
        assert cat[-1].name == "Frontier-E"
        assert cat[-1].gpu_accelerated
        assert not any(s.gpu_accelerated for s in cat[:-1])
