"""Registry semantics: selection precedence, fallback, scoping, catalog."""

import sys

import numpy as np
import pytest

from repro.backend import (
    BACKENDS,
    BackendFallbackWarning,
    active_backend,
    get_kernel,
    kernel_names,
    kernel_spec,
    register_kernel,
    resolve_backend,
    select_backend,
    use_backend,
    warm_up,
)
from repro.backend import registry
from repro.observe import Observatory

#: every hot kernel the tentpole names, and the contract class it declares
EXPECTED_KERNELS = {
    "scatter.segment_sum_csr": "roundoff",
    "scatter.segment_max_csr": "bit-identical",
    "pm.cic_deposit": "bit-identical",
    "pm.cic_gather": "bit-identical",
    "gravity.short_range_pairs": "roundoff",
    "crk.moments": "roundoff",
    "crk.corrected_pairs": "roundoff",
    "gpusim.lane_scatter_add": "bit-identical",
}


@pytest.fixture
def clean_state(monkeypatch):
    """Isolate registry module state and the env override per test."""
    monkeypatch.delenv(registry.ENV_VAR, raising=False)
    saved = dict(registry._state)
    registry._state["warned_fallback"] = False
    yield registry._state
    registry._state.clear()
    registry._state.update(saved)


def _import_all_kernel_modules():
    import repro.core.gravity.pm  # noqa: F401
    import repro.core.gravity.short_range  # noqa: F401
    import repro.core.scatter  # noqa: F401
    import repro.core.sph.crk  # noqa: F401
    import repro.gpusim.warp  # noqa: F401


class TestCatalog:
    def test_every_hot_kernel_registered_with_contract(self):
        _import_all_kernel_modules()
        assert set(kernel_names()) >= set(EXPECTED_KERNELS)
        for name, contract in EXPECTED_KERNELS.items():
            spec = kernel_spec(name)
            assert spec.contract == contract
            assert "numpy" in spec.impls
            if contract == "roundoff":
                # roundoff contracts must document their bound
                assert spec.rtol > 0 or spec.atol > 0
                assert spec.note
            else:
                assert spec.rtol == 0 and spec.atol == 0

    def test_unknown_kernel_raises_with_known_names(self):
        with pytest.raises(KeyError, match="no kernel registered"):
            kernel_spec("no.such.kernel")
        with pytest.raises(KeyError):
            get_kernel("no.such.kernel")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cuda")
        with pytest.raises(ValueError):
            register_kernel("x", backend="cuda")


class TestSelection:
    def test_default_is_numpy(self, clean_state):
        assert resolve_backend(None) == "numpy"
        assert resolve_backend("numpy") == "numpy"

    def test_env_overrides_request(self, clean_state, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "numpy")
        assert resolve_backend("jit") == "numpy"

    def test_env_jit_resolves_by_availability(self, clean_state, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "jit")
        expect = "jit" if registry.numba_available() else "numpy"
        with pytest.warns(BackendFallbackWarning) if expect == "numpy" \
                else _no_warning():
            assert resolve_backend("numpy") == expect

    def test_bad_env_value_raises(self, clean_state, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "fortran")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            resolve_backend(None)

    def test_use_backend_scopes_and_restores(self, clean_state):
        before = active_backend()
        with use_backend("numpy") as b:
            assert b == "numpy"
            assert active_backend() == "numpy"
        assert active_backend() == before


def _no_warning():
    import contextlib

    return contextlib.nullcontext()


class TestFallback:
    def _shim_numba_missing(self, monkeypatch):
        """Make ``import numba`` fail regardless of the environment."""
        monkeypatch.setitem(sys.modules, "numba", None)
        registry._state["numba_checked"] = False
        registry._state["numba_ok"] = False
        registry._state["warned_fallback"] = False

    def test_jit_without_numba_warns_once_and_degrades(
        self, clean_state, monkeypatch
    ):
        self._shim_numba_missing(monkeypatch)
        with pytest.warns(BackendFallbackWarning, match="falling back"):
            assert resolve_backend("jit") == "numpy"
        # one-time: the second request degrades silently
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")
            assert resolve_backend("jit") == "numpy"

    def test_get_kernel_serves_numpy_reference_after_fallback(
        self, clean_state, monkeypatch
    ):
        _import_all_kernel_modules()
        self._shim_numba_missing(monkeypatch)
        with pytest.warns(BackendFallbackWarning):
            with use_backend("jit"):
                assert active_backend() == "numpy"
                fn = get_kernel("pm.cic_deposit")
        assert fn is kernel_spec("pm.cic_deposit").impls["numpy"]

    def test_warm_up_is_noop_without_numba(self, clean_state, monkeypatch):
        self._shim_numba_missing(monkeypatch)
        assert warm_up() == 0.0

    def test_select_backend_records_fallback_choice(
        self, clean_state, monkeypatch
    ):
        self._shim_numba_missing(monkeypatch)
        obs = Observatory()
        with pytest.warns(BackendFallbackWarning):
            resolved = select_backend("jit", observe=obs)
        assert resolved == "numpy"
        assert obs.registry.gauge("backend/jit_active").value == 0.0


class TestDispatch:
    def test_missing_backend_impl_falls_through_to_numpy(self, clean_state):
        name = "test.registry_fallthrough"

        @register_kernel(name, backend="numpy")
        def ref(x):
            return x + 1

        try:
            assert get_kernel(name, backend="jit") is ref
            with use_backend("numpy"):
                assert get_kernel(name)(np.float64(1.0)) == 2.0
        finally:
            registry._kernels.pop(name, None)

    def test_backends_tuple_is_fixed(self):
        assert BACKENDS == ("numpy", "jit")
