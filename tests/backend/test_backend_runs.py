"""Run-level backend parity: serial, subcycled, and 4-rank overlap runs.

The jit-vs-numpy comparisons skip clean without numba; the StepRecord
bookkeeping and fallback behavior are asserted on every environment.
"""

import numpy as np
import pytest

from repro.backend import numba_available
from repro.backend import registry
from repro.cosmology import PLANCK18, zeldovich_ics
from repro.core.particles import make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig
from repro.parallel.distributed_sim import (
    DistributedConfig,
    DistributedSimulation,
)

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed (the [jit] extra)"
)

BOX = 20.0


@pytest.fixture(autouse=True)
def no_env_override(monkeypatch):
    """Pin selection to the configs under test, not the CI env matrix."""
    monkeypatch.delenv(registry.ENV_VAR, raising=False)


def _serial_sim(backend, max_rung=2, n_pm_steps=2, seed=11):
    ics = zeldovich_ics(6, BOX, PLANCK18, a_init=0.25, seed=seed)
    parts = make_gas_dm_pair(
        ics.positions, ics.velocities, ics.particle_mass,
        PLANCK18.omega_b, PLANCK18.omega_m, u_init=20.0, box=BOX,
    )
    cfg = SimulationConfig(
        box=BOX, pm_grid=12, a_init=0.25, a_final=0.32,
        n_pm_steps=n_pm_steps, cosmo=PLANCK18, max_rung=max_rung,
        backend=backend,
    )
    return Simulation(cfg, parts)


def _assert_states_close(sa, sb, rtol=1e-7, atol=1e-9):
    """Trajectory agreement under the per-kernel roundoff contracts.

    Two PM steps of a well-posed (non-chaotic at this duration) problem
    amplify the ~1e-15 per-evaluation reduction-order differences only
    mildly; these bounds are far below any physical tolerance."""
    np.testing.assert_allclose(sa.particles.pos, sb.particles.pos,
                               rtol=rtol, atol=atol)
    np.testing.assert_allclose(sa.particles.vel, sb.particles.vel,
                               rtol=rtol, atol=atol)
    np.testing.assert_allclose(sa.particles.u, sb.particles.u,
                               rtol=rtol, atol=atol)


class TestSerial:
    def test_step_record_backend_default(self):
        sim = _serial_sim("numpy", max_rung=1, n_pm_steps=1)
        rec = sim.run()[0]
        assert sim.backend == "numpy"
        assert rec.backend == "numpy"

    @needs_numba
    def test_jit_matches_numpy_subcycled(self):
        """Serial + deep-rung subcycling: the full force stack (PM deposit,
        short-range pairs, CRK moments/derivatives, segment reductions)
        runs compiled and lands on the reference trajectory."""
        sn = _serial_sim("numpy")
        sj = _serial_sim("jit")
        rn = sn.run()
        rj = sj.run()
        assert all(r.backend == "jit" for r in rj)
        assert all(r.backend == "numpy" for r in rn)
        # same rung schedule (bit-identical deposit/gather keeps the PM
        # forces identical; timestep criteria agree to roundoff)
        assert [r.deepest_rung for r in rj] == [r.deepest_rung for r in rn]
        _assert_states_close(sj, sn)

    def test_jit_request_without_numba_falls_back(self, monkeypatch):
        if numba_available():
            pytest.skip("numba present; fallback exercised via import shim "
                        "in test_registry")
        saved = dict(registry._state)
        registry._state["warned_fallback"] = False
        try:
            with pytest.warns(registry.BackendFallbackWarning):
                sim = _serial_sim("jit", max_rung=1, n_pm_steps=1)
            rec = sim.run()[0]
            assert sim.backend == "numpy"
            assert rec.backend == "numpy"
        finally:
            registry._state.clear()
            registry._state.update(saved)


def _clustered_ics(seed=7, n_side=4, n_blob=24):
    rng = np.random.default_rng(seed)
    box = 120.0
    g = (np.arange(n_side) + 0.5) * box / n_side
    grid = np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1)
    dm = np.mod(grid.reshape(-1, 3) + rng.normal(0, 1.0, (n_side**3, 3)),
                box)
    blob = 75.0 + 0.5 * rng.standard_normal((n_blob, 3))
    pos = np.vstack([dm, blob])
    vel = rng.normal(0, 25.0, pos.shape)
    mass = np.full(len(pos), 1.0e10)
    mass[len(dm):] = 2.0e12
    return pos, vel, mass


class TestDistributed:
    def _run(self, backend):
        pos, vel, mass = _clustered_ics()
        cfg = DistributedConfig(
            box=120.0, pm_grid=32, a_init=0.3, a_final=0.34, n_pm_steps=2,
            cosmo=PLANCK18, r_split_cells=1.0, comm_mode="overlap",
            subcycle=True, active_set=True, max_rung=3, backend=backend,
        )
        sim = DistributedSimulation(cfg, 4)
        out = sim.run(pos.copy(), vel.copy(), mass.copy())
        return out, sim

    @needs_numba
    def test_4rank_overlap_subcycle_jit_matches_numpy(self):
        """The distributed driver inherits the parity contracts: a 4-rank
        overlap+subcycle run on the jit backend lands on the numpy
        reference trajectory, with the backend recorded per step."""
        (pn, vn, _), sn = self._run("numpy")
        (pj, vj, _), sj = self._run("jit")
        assert all(r.backend == "jit" for r in sj.step_records)
        assert sj.step_records[0].deepest_rung >= 2
        np.testing.assert_allclose(pj, pn, rtol=1e-7, atol=1e-7)
        np.testing.assert_allclose(vj, vn, rtol=1e-7, atol=1e-7)

    def test_step_records_carry_backend(self):
        (_, _, _), sim = self._run("numpy")
        assert all(r.backend == "numpy" for r in sim.step_records)
