"""Per-kernel parity sweep: jit vs the NumPy reference, per contract.

Skips clean when numba is absent (the ``[jit]`` extra); the CI jit job
runs it for real.  Each kernel is exercised across dtypes and
empty/degenerate segment layouts, and compared exactly as its declared
contract demands: ``np.array_equal`` for bit-identical kernels,
``np.allclose`` within the documented bound for roundoff kernels.
"""

import numpy as np
import pytest

pytest.importorskip("numba")

from repro.backend import get_kernel, kernel_spec  # noqa: E402
from repro.backend import registry  # noqa: E402
from repro.core.scatter import SegmentReducer  # noqa: E402
import repro.core.gravity.pm  # noqa: E402, F401
import repro.core.gravity.short_range  # noqa: E402, F401
import repro.core.sph.crk  # noqa: E402, F401
import repro.gpusim.warp  # noqa: E402, F401

registry._load_jit()
registry.warm_up()


def both(name):
    return (
        get_kernel(name, backend="numpy"),
        get_kernel(name, backend="jit"),
    )


def assert_contract(name, ref, out, f32=False):
    """Compare one output pair under the kernel's declared contract."""
    spec = kernel_spec(name)
    ref_t = ref if isinstance(ref, tuple) else (ref,)
    out_t = out if isinstance(out, tuple) else (out,)
    assert len(ref_t) == len(out_t)
    for a, b in zip(ref_t, out_t):
        a, b = np.asarray(a), np.asarray(b)
        assert a.shape == b.shape
        if spec.contract == "bit-identical":
            assert a.dtype == b.dtype
            eq_nan = {"equal_nan": True} if a.dtype.kind == "f" else {}
            assert np.array_equal(a, b, **eq_nan), (
                f"{name}: bit-identical contract violated "
                f"(max |diff| = {np.max(np.abs(a - b))})"
            )
        else:
            # documented bounds are for float64; float32 inputs scale by
            # the eps ratio (exercised explicitly with loose bounds)
            rtol = spec.rtol if not f32 else 1e-4
            atol = spec.atol if not f32 else 1e-5
            np.testing.assert_allclose(
                b, a, rtol=rtol, atol=atol, equal_nan=True,
                err_msg=f"{name}: roundoff contract violated",
            )


def _reducer(rng, n_pairs, n_segments, sorted_ids=True):
    ids = rng.integers(0, n_segments, n_pairs)
    if sorted_ids:
        ids = np.sort(ids)
    return SegmentReducer(ids, n_segments)


class TestSegmentReductions:
    NAME_SUM = "scatter.segment_sum_csr"
    NAME_MAX = "scatter.segment_max_csr"

    @pytest.mark.parametrize("sorted_ids", [True, False])
    @pytest.mark.parametrize("trail", [(), (3,), (3, 3)])
    def test_sum_layouts(self, sorted_ids, trail):
        rng = np.random.default_rng(1)
        red = _reducer(rng, 500, 40, sorted_ids)
        v = rng.standard_normal((500,) + trail)
        np_fn, jit_fn = both(self.NAME_SUM)
        assert_contract(self.NAME_SUM, np_fn(red, v), jit_fn(red, v))

    def test_sum_float32_accumulates_in_float32(self):
        rng = np.random.default_rng(2)
        red = _reducer(rng, 300, 20)
        v = rng.standard_normal((300, 3)).astype(np.float32)
        np_fn, jit_fn = both(self.NAME_SUM)
        a, b = np_fn(red, v), jit_fn(red, v)
        assert a.dtype == b.dtype == np.float32
        assert_contract(self.NAME_SUM, a, b, f32=True)

    def test_sum_empty_pairs_and_empty_segments(self):
        red = SegmentReducer(np.array([], dtype=np.int64), 7)
        np_fn, jit_fn = both(self.NAME_SUM)
        v = np.empty((0, 3))
        assert_contract(self.NAME_SUM, np_fn(red, v), jit_fn(red, v))
        # every id in one segment: six segments stay empty
        red2 = SegmentReducer(np.full(50, 3), 7)
        v2 = np.random.default_rng(3).standard_normal(50)
        assert_contract(self.NAME_SUM, np_fn(red2, v2), jit_fn(red2, v2))

    @pytest.mark.parametrize("initial", [0.0, -np.inf, 2.5])
    def test_max_contract_and_initial(self, initial):
        rng = np.random.default_rng(4)
        red = _reducer(rng, 400, 30)
        v = rng.standard_normal(400)  # mixed signs: clamp matters
        a = red.max(v, initial=initial)
        np_fn, jit_fn = both(self.NAME_MAX)
        fill = v.dtype.type(initial)
        assert_contract(self.NAME_MAX, np_fn(red, v, fill),
                        jit_fn(red, v, fill))
        assert np.array_equal(a, np_fn(red, v, fill))

    def test_max_integer_values(self):
        rng = np.random.default_rng(5)
        red = _reducer(rng, 200, 16)
        v = rng.integers(-1000, 1000, 200)
        np_fn, jit_fn = both(self.NAME_MAX)
        fill = np.int64(np.iinfo(np.int64).min)
        assert_contract(self.NAME_MAX, np_fn(red, v, fill),
                        jit_fn(red, v, fill))

    def test_max_nan_propagates_on_both_backends(self):
        red = SegmentReducer(np.array([0, 0, 1, 1]), 3)
        v = np.array([1.0, np.nan, 2.0, -1.0])
        np_fn, jit_fn = both(self.NAME_MAX)
        a = np_fn(red, v, np.float64(-np.inf))
        b = jit_fn(red, v, np.float64(-np.inf))
        assert np.isnan(a[0]) and np.isnan(b[0])
        assert_contract(self.NAME_MAX, a, b)


class TestCIC:
    def _pos(self, rng, n_particles, box):
        return rng.uniform(0, box, (n_particles, 3))

    @pytest.mark.parametrize("scalar_mass", [False, True])
    def test_deposit_bit_identical(self, scalar_mass):
        rng = np.random.default_rng(6)
        box, n = 25.0, 8
        pos = self._pos(rng, 300, box)
        mass = 1.5 if scalar_mass else rng.uniform(0.5, 2.0, 300)
        np_fn, jit_fn = both("pm.cic_deposit")
        assert_contract("pm.cic_deposit", np_fn(pos, mass, n, box),
                        jit_fn(pos, mass, n, box))

    def test_deposit_empty(self):
        np_fn, jit_fn = both("pm.cic_deposit")
        pos = np.empty((0, 3))
        mass = np.empty(0)
        assert_contract("pm.cic_deposit", np_fn(pos, mass, 4, 10.0),
                        jit_fn(pos, mass, 4, 10.0))

    @pytest.mark.parametrize("components", [None, 3])
    def test_gather_bit_identical(self, components):
        rng = np.random.default_rng(7)
        box, n = 25.0, 8
        pos = self._pos(rng, 300, box)
        shape = (n, n, n) if components is None else (n, n, n, components)
        field = rng.standard_normal(shape)
        np_fn, jit_fn = both("pm.cic_gather")
        assert_contract("pm.cic_gather", np_fn(field, pos, box),
                        jit_fn(field, pos, box))


class TestShortRange:
    NAME = "gravity.short_range_pairs"

    def _pairs(self, n):
        idx = np.arange(n)
        pi = np.repeat(idx, n)
        pj = np.tile(idx, n)
        keep = pi != pj
        return pi[keep], pj[keep]

    @pytest.mark.parametrize("box", [None, 30.0])
    @pytest.mark.parametrize("r_split", [0.0, 3.0])
    def test_all_pairs(self, box, r_split):
        rng = np.random.default_rng(8)
        n = 48
        pos = rng.uniform(0, 30.0, (n, 3))
        mass = rng.uniform(0.5, 2.0, n)
        pi, pj = self._pairs(n)
        np_fn, jit_fn = both(self.NAME)
        args = (pos, mass, pi, pj, pi, n, r_split, 0.05, box, 43.1)
        assert_contract(self.NAME, np_fn(*args), jit_fn(*args))

    def test_compact_sink_rows(self):
        """Active-set assembly: rows differ from pi, output is compact."""
        rng = np.random.default_rng(9)
        n = 40
        pos = rng.uniform(0, 20.0, (n, 3))
        mass = np.ones(n)
        pi, pj = self._pairs(n)
        # only the first 10 particles are sinks, scattered to rows 0..9
        keep = pi < 10
        pi, pj = pi[keep], pj[keep]
        rows = pi.copy()
        np_fn, jit_fn = both(self.NAME)
        args = (pos, mass, pi, pj, rows, 10, 2.0, 0.05, 20.0, 43.1)
        a, b = np_fn(*args), jit_fn(*args)
        assert a.shape == (10, 3)
        assert_contract(self.NAME, a, b)

    def test_empty_pairs(self):
        np_fn, jit_fn = both(self.NAME)
        e = np.array([], dtype=np.int64)
        args = (np.empty((0, 3)), np.empty(0), e, e, e, 5, 1.0, 0.05,
                None, 1.0)
        assert_contract(self.NAME, np_fn(*args), jit_fn(*args))


class TestCRK:
    def _moment_inputs(self, rng, n_pairs, n_particles):
        red = SegmentReducer(
            np.sort(rng.integers(0, n_particles, n_pairs)), n_particles
        )
        vj = rng.uniform(0.5, 2.0, n_pairs)
        dx = rng.standard_normal((n_pairs, 3))
        w = rng.uniform(0.0, 1.0, n_pairs)
        gw = rng.standard_normal((n_pairs, 3))
        return vj, dx, w, gw, red

    def test_moments(self):
        rng = np.random.default_rng(10)
        args = self._moment_inputs(rng, 600, 50)
        np_fn, jit_fn = both("crk.moments")
        a, b = np_fn(*args), jit_fn(*args)
        assert len(a) == len(b) == 6  # m0, m1, m2, dm0, dm1, dm2
        assert_contract("crk.moments", a, b)

    def test_moments_empty(self):
        red = SegmentReducer(np.array([], dtype=np.int64), 8)
        e = np.empty(0)
        e3 = np.empty((0, 3))
        np_fn, jit_fn = both("crk.moments")
        assert_contract("crk.moments", np_fn(e, e3, e, e3, red),
                        jit_fn(e, e3, e, e3, red))

    def test_corrected_pairs(self):
        rng = np.random.default_rng(11)
        n, p = 30, 400
        ca = rng.uniform(0.8, 1.2, n)
        cb = 0.1 * rng.standard_normal((n, 3))
        cga = 0.1 * rng.standard_normal((n, 3))
        cgb = 0.1 * rng.standard_normal((n, 3, 3))
        pi = rng.integers(0, n, p)
        dx = rng.standard_normal((p, 3))
        w = rng.uniform(0.0, 1.0, p)
        gw = rng.standard_normal((p, 3))
        np_fn, jit_fn = both("crk.corrected_pairs")
        args = (ca, cb, cga, cgb, pi, dx, w, gw)
        a, b = np_fn(*args), jit_fn(*args)
        assert_contract("crk.corrected_pairs", a, b)


class TestLaneScatterAdd:
    NAME = "gpusim.lane_scatter_add"

    def test_duplicate_lane_order_bit_identical(self):
        rng = np.random.default_rng(12)
        idx = rng.integers(0, 16, 200)
        vals = rng.standard_normal(200)
        np_fn, jit_fn = both(self.NAME)
        a = np_fn(np.zeros(16), idx, vals)
        b = jit_fn(np.zeros(16), idx, vals)
        assert_contract(self.NAME, a, b)
        # and both equal the np.add.at ground truth
        ref = np.zeros(16)
        np.add.at(ref, idx, vals)
        assert np.array_equal(a, ref)

    def test_accumulates_in_place(self):
        np_fn, jit_fn = both(self.NAME)
        for fn in (np_fn, jit_fn):
            out = np.ones(4)
            ret = fn(out, np.array([1, 1]), np.array([2.0, 3.0]))
            assert ret is out
            assert np.array_equal(out, [1.0, 6.0, 1.0, 1.0])
