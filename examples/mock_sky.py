#!/usr/bin/env python
"""Mock sky: lightcone shells and multi-wavelength maps.

Builds the survey-facing products the Frontier-E volume exists for
(paper Sections II/VII): a lightcone assembled from snapshots of an
evolving box, projected into full-sky maps of galaxy counts, thermal
Sunyaev-Zel'dovich Compton-y, and X-ray surface brightness.

Run:  python examples/mock_sky.py
"""

import numpy as np

from repro.analysis import (
    AngularMap,
    LightconeBuilder,
    compton_y_weights,
    fof_halos,
    xray_luminosity_weights,
)
from repro.core.particles import make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig
from repro.cosmology import PLANCK18, zeldovich_ics


def main():
    box = 50.0
    ics = zeldovich_ics(10, box, PLANCK18, a_init=0.3, seed=21)
    parts = make_gas_dm_pair(
        ics.positions, ics.velocities, ics.particle_mass,
        PLANCK18.omega_b, PLANCK18.omega_m, u_init=50.0, box=box,
    )
    cfg = SimulationConfig(
        box=box, pm_grid=20, a_init=0.3, a_final=0.8, n_pm_steps=4,
        cosmo=PLANCK18, subgrid=True, max_rung=3,
    )
    sim = Simulation(cfg, parts)
    print(f"Evolving {len(parts)} particles z = {1/0.3 - 1:.1f} -> "
          f"{1/0.8 - 1:.2f} and snapshotting for the lightcone...")

    # snapshot the box at each step; each snapshot fills one distance shell
    snapshots = []
    a_values = []
    for rec in [sim.pm_step() for _ in range(cfg.n_pm_steps)]:
        snapshots.append(sim.particles.copy())
        a_values.append(rec.a)

    builder = LightconeBuilder(box, PLANCK18)
    counts_map = AngularMap(n_theta=24, n_phi=48)
    y_map = AngularMap(n_theta=24, n_phi=48)
    xray_map = AngularMap(n_theta=24, n_phi=48)

    # shells from late (inner) to early (outer): one comoving-distance
    # shell per snapshot, spanning 0 -> 2 box lengths (a toy box cannot
    # tile out to the true chi(z) of these redshifts — the full-scale run
    # uses a 4.7 Gpc box precisely so that it can)
    n_shells = len(snapshots)
    chi_edges = np.linspace(0.0, 2.0 * box, n_shells + 1)
    total_selected = 0
    for snap, a_in, chi_lo, chi_hi in zip(
        reversed(snapshots), reversed(a_values),
        chi_edges[:-1], chi_edges[1:],
    ):
        shell = builder.shell_by_distance(snap.pos, chi_lo, chi_hi, a=a_in)
        gas_mask = snap.gas
        # per-particle weights (indexed by snapshot row)
        chi_mid = 0.5 * (shell.chi_min + shell.chi_max)
        d = np.full(len(snap), max(chi_mid, 1.0))
        y_w = np.where(gas_mask, compton_y_weights(snap.mass, snap.u, d), 0.0)
        x_w = np.where(
            gas_mask,
            xray_luminosity_weights(snap.mass, np.maximum(snap.rho, 1e4),
                                    snap.u, a=a_in),
            0.0,
        )
        builder.project_shell(shell, np.ones(len(snap)), counts_map)
        builder.project_shell(shell, y_w, y_map)
        builder.project_shell(shell, x_w, xray_map)
        total_selected += len(shell.positions)
        print(f"  shell chi = [{shell.chi_min:6.1f}, {shell.chi_max:6.1f}] "
              f"Mpc/h (snapshot a = {a_in:.2f}): {len(shell.positions):7d} "
              f"particle images")

    print(f"\nLightcone totals: {total_selected} particle images on the sky")
    for name, sky in (("galaxy/particle counts", counts_map),
                      ("Compton-y", y_map), ("X-ray", xray_map)):
        d = sky.data[sky.data > 0]
        print(f"  {name:<22} mean {sky.mean():.3e}/sr, "
              f"p99/median contrast "
              f"{np.percentile(d, 99) / max(np.median(d), 1e-300):7.1f}x")

    # halos on the final snapshot anchor the brightest pixels
    cat = fof_halos(sim.particles.pos, sim.particles.mass, box, b=0.25,
                    min_members=6)
    print(f"\nFinal snapshot: {cat.n_halos} FOF halos; the brightest sky "
          f"pixels trace the most massive structures.")


if __name__ == "__main__":
    main()
