#!/usr/bin/env python
"""Distributed substrate demo: ranks, overloading, and the SWFFT analog.

Shows the communication layer the exascale run is built on, at laptop
scale: a 3D cuboid decomposition over 8 simulated ranks, ghost-particle
overloading so short-range work needs no mid-step communication, particle
migration after drift, and a slab-decomposed distributed FFT validated
against numpy — all through the mpi4py-style SimComm interface.

Run:  python examples/distributed_ranks.py
"""

import numpy as np

from repro.parallel import (
    DistributedFFT,
    World,
    exchange_overload,
    make_decomposition,
    migrate_particles,
    scatter_slabs,
)


def main():
    box, n_ranks, n_part = 40.0, 8, 4000
    overload_width = 3.0
    rng = np.random.default_rng(0)
    pos = rng.uniform(0, box, (n_part, 3))
    ids = np.arange(n_part)

    decomp = make_decomposition(box, n_ranks)
    owner = decomp.rank_of_positions(pos)
    print(f"Decomposition: {decomp.dims} rank grid over a {box} Mpc/h box")
    print(f"Overload width: {overload_width} Mpc/h -> ghost volume fraction "
          f"{decomp.overload_volume_fraction(overload_width) * 100:.0f}%")

    def rank_program(comm):
        mine = owner == comm.rank
        my_pos, my_ids = pos[mine], ids[mine]

        # 1. ghost exchange: after this, all short-range interactions are
        #    node-local for the whole PM step (paper Section IV-A)
        ghost_pos, ghost_ids = exchange_overload(
            comm, my_pos, my_ids, decomp, overload_width
        )
        n_ghost = len(ghost_ids)

        # 2. pretend-drift, then migrate owners
        drifted = np.mod(my_pos + rng.standard_normal(my_pos.shape), box)
        new_pos, payload = migrate_particles(
            comm, drifted, {"ids": my_ids}, decomp
        )

        # 3. a global reduction, as the solver does for diagnostics
        total = comm.allreduce(len(new_pos))
        return {
            "rank": comm.rank,
            "owned": int(mine.sum()),
            "ghosts": n_ghost,
            "after_migration": len(new_pos),
            "global_total": total,
        }

    world = World(n_ranks)
    results = world.run(rank_program)
    print(f"\n{'rank':>4} {'owned':>6} {'ghosts':>7} {'overload':>9} "
          f"{'after migration':>16}")
    for r in results:
        print(f"{r['rank']:>4} {r['owned']:>6} {r['ghosts']:>7} "
              f"{r['ghosts'] / max(r['owned'], 1):>8.2f}x "
              f"{r['after_migration']:>16}")
    assert all(r["global_total"] == n_part for r in results)
    print(f"Fabric traffic: {world.stats.collective_calls} collectives, "
          f"{world.stats.collective_bytes / 1e6:.1f} MB")

    # distributed FFT (the SWFFT analog behind the PM solver)
    ng = 16
    field = rng.normal(size=(ng, ng, ng))
    slabs = scatter_slabs(field, n_ranks)

    def fft_program(comm):
        fft = DistributedFFT(comm, ng)
        spec = fft.forward(slabs[comm.rank])
        return fft.inverse(spec).real

    world2 = World(n_ranks)
    recon = np.concatenate(world2.run(fft_program), axis=0)
    err = np.abs(recon - field).max()
    print(f"\nDistributed FFT round trip on {ng}^3 over {n_ranks} ranks: "
          f"max error {err:.2e}")
    assert err < 1e-12


if __name__ == "__main__":
    main()
