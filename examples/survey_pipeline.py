#!/usr/bin/env python
"""Survey pipeline: from simulation to the products surveys consume.

The chain the paper's introduction motivates (Sections II, III, VII):
evolve a box, find halos, populate them with an HOD galaxy catalog,
observe the catalog in redshift space, measure clustering — and then plan
the ensemble + emulator campaign that turns many such boxes into
cosmological constraints.

Run:  python examples/survey_pipeline.py
"""

import numpy as np

from repro.analysis import (
    HODParams,
    fof_halos,
    natural_estimator,
    populate_halos,
    redshift_space_positions,
)
from repro.constants import FRONTIER_E_PARTICLES
from repro.core.particles import Particles
from repro.core.simulation import Simulation, SimulationConfig
from repro.cosmology import (
    PLANCK18,
    LinearPower,
    latin_hypercube,
    train_power_emulator,
    zeldovich_ics,
)
from repro.perfmodel import plan_ensemble


def main():
    # --- 1. the simulation ---------------------------------------------------
    box, n = 60.0, 14
    print(f"1. gravity-only box: {n**3} particles, {box} Mpc/h, z=4 -> 0.33")
    ics = zeldovich_ics(n, box, PLANCK18, a_init=0.2, seed=12)
    parts = Particles(
        pos=ics.positions, vel=ics.velocities,
        mass=np.full(n**3, ics.particle_mass),
        species=np.zeros(n**3, dtype=np.int8),
    )
    sim = Simulation(SimulationConfig(
        box=box, pm_grid=28, a_init=0.2, a_final=0.75, n_pm_steps=7,
        cosmo=PLANCK18, hydro=False, max_rung=2,
    ), parts)
    sim.run()
    p = sim.particles

    # --- 2. halos -> HOD galaxies ----------------------------------------------
    cat = fof_halos(p.pos, p.mass, box, b=0.2, min_members=8)
    hod = HODParams(log_m_min=13.0, log_m0=13.2, log_m1=14.0)
    gals = populate_halos(cat, box, params=hod,
                          rng=np.random.default_rng(1))
    print(f"2. {cat.n_halos} halos -> {len(gals)} galaxies "
          f"({gals.n_centrals} centrals, {gals.n_satellites} satellites)")

    # --- 3. redshift-space clustering -------------------------------------------
    a_obs = 0.75
    s_pos = redshift_space_positions(
        gals.positions, gals.velocities, box, PLANCK18, a=a_obs
    )
    edges = np.array([1.0, 4.0, 10.0, 20.0])
    if len(gals) > 20:
        xi_real = natural_estimator(gals.positions, edges, box)
        xi_red = natural_estimator(s_pos, edges, box)
        print("3. galaxy correlation function (real vs redshift space):")
        for i, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
            print(f"   r = {lo:4.0f}-{hi:2.0f} Mpc/h: "
                  f"xi_real = {xi_real[i]:7.2f}  xi_z = {xi_red[i]:7.2f}")
    else:
        print("3. too few galaxies at this box size for xi (expected)")

    # --- 4. the ensemble + emulator campaign (paper §VII) ------------------------
    print("4. emulator over a Latin-hypercube design (linear-theory oracle):")
    design = latin_hypercube(
        24, {"sigma8": (0.7, 0.9), "omega_m": (0.26, 0.36)},
        rng=np.random.default_rng(2),
    )
    k = np.logspace(-2, 0, 10)
    emu = train_power_emulator(design, k, base_cosmo=PLANCK18)
    import dataclasses

    test_s8, test_om = 0.85, 0.29
    pred = emu.predict(sigma8=test_s8, omega_m=test_om)
    truth = LinearPower(
        dataclasses.replace(PLANCK18, sigma8=test_s8, omega_m=test_om)
    )(k)
    err = np.abs(pred / truth - 1).max()
    print(f"   trained on 24 design points; held-out error {err * 100:.2f}% "
          f"at (s8={test_s8}, Om={test_om})")

    print("5. what would the real campaign cost? (node-hour budget 2e7)")
    for frac, label in ((1.0, "Frontier-E twins"), (1 / 64, "1/64-size members")):
        plan = plan_ensemble(2.0e7, FRONTIER_E_PARTICLES * frac)
        cov = plan.covariance_precision()
        cov_str = f"{cov * 100:.0f}%" if np.isfinite(cov) else "undetermined"
        print(f"   {label:<20} {plan.n_members:4d} members -> "
              f"covariance precision {cov_str}")


if __name__ == "__main__":
    main()
