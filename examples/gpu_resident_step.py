#!/usr/bin/env python
"""One GPU-resident PM step, kernel by kernel (paper Sections IV-A/IV-B).

Walks the exact device-side execution model of CRK-HACC on the simulated
GPU: build the chaining mesh + coarse-leaf tree on the host, upload the
overloaded rank once, run warp-split interaction kernels over the
interaction list for several subcycles (updating fields device-side,
growing leaf boxes, filtering to active leaves), and download only the
final results — then read the rocprof-style counters back out.

Run:  python examples/gpu_resident_step.py
"""

import numpy as np

from repro.gpusim import (
    H100_SXM5,
    MI250X_GCD,
    GPUResidentSolver,
    OccupancyModel,
    execute_leaf_pair_naive,
    execute_leaf_pair_warpsplit,
    hydro_force_like_kernel,
    sph_density_kernel,
    warp_splitting_occupancy_gain,
)
from repro.tree import build_chaining_mesh, build_interaction_list, build_leaf_set


def main():
    rng = np.random.default_rng(4)
    n, box, h = 2000, 6.0, 0.35
    pos = rng.uniform(0, box, (n, 3))
    mass = rng.uniform(0.8, 1.2, n)

    # host side: tree build, once per PM step
    # coarse leaves of O(100) particles: the paper sizes leaves to fill
    # half-warps — tiny leaves would waste lanes to padding
    mesh = build_chaining_mesh(pos, 2.0, origin=0.0, extent=box, periodic=False)
    leaves = build_leaf_set(pos, mesh, max_leaf=128)
    ilist = build_interaction_list(leaves, mesh, pad=h, box=None)
    print(f"tree: {leaves.n_leaves} leaves, {len(ilist)} leaf-pair interactions")

    # device side: upload once, run subcycles without leaving the GPU
    device = MI250X_GCD
    solver = GPUResidentSolver(device)
    h2d = solver.upload(pos, {"m": mass, "h": np.full(n, h)})
    print(f"H->D upload: {h2d / 1e6:.2f} MB (once per PM step)")

    kern = sph_density_kernel(h)
    device_bytes = 0
    n_subcycles = 4
    for s in range(n_subcycles):
        # deeper subcycles touch fewer leaves (adaptive rungs)
        active = np.ones(leaves.n_leaves, dtype=bool)
        if s > 0:
            active[:] = False
            active[:: 2**s] = True
        res = solver.run_interaction_list(
            kern, leaves, ilist, active_leaves=active, download=False
        )
        device_bytes += res.counters.bytes_moved
        print(f"  subcycle {s}: {res.n_leaf_pairs:5d} active leaf pairs, "
              f"{res.counters.flops / 1e6:7.1f} MFLOP, "
              f"lane efficiency {res.counters.lane_efficiency * 100:5.1f}%")

    final = solver.run_interaction_list(kern, leaves, ilist)
    device_bytes += final.counters.bytes_moved
    frac = solver.transfer_fraction(device_bytes)
    print(f"D->H download: {final.d2h_bytes / 1e6:.2f} MB")
    print(f"host-transfer fraction of device traffic: {frac * 100:.1f}% "
          f"(GPU-resident design keeps this small)")

    # the warp-splitting story on one heavy kernel
    heavy = hydro_force_like_kernel(h)
    idx_i = leaves.particles_in_leaf(0)
    idx_j = leaves.particles_in_leaf(min(1, leaves.n_leaves - 1))
    state = {k: rng.uniform(0.5, 2.0, n) for k in heavy.fields_i}
    si = {k: state[k][idx_i] for k in heavy.fields_i}
    sj = {k: state[k][idx_j] for k in heavy.fields_j}
    _, _, cs = execute_leaf_pair_warpsplit(
        heavy, pos[idx_i], si, pos[idx_j], sj, device
    )
    _, _, cn = execute_leaf_pair_naive(
        heavy, pos[idx_i], si, pos[idx_j], sj, device
    )
    gain = warp_splitting_occupancy_gain(heavy, device, OccupancyModel())
    print("\nwarp splitting on the hydro-force-shaped kernel:")
    print(f"  global traffic: {cn.global_load_bytes / max(cs.global_load_bytes, 1):.1f}x "
          f"less with splitting ({cs.shuffles} register shuffles instead)")
    print(f"  registers/thread: {gain['naive']['registers']} -> "
          f"{gain['split']['registers']}")
    print(f"  resident warps: {gain['naive']['resident_warps']} -> "
          f"{gain['split']['resident_warps']} "
          f"(occupancy {gain['naive']['occupancy'] * 100:.0f}% -> "
          f"{gain['split']['occupancy'] * 100:.0f}%)")

    # cross-vendor check (paper Fig. 6 left)
    for dev in (MI250X_GCD, H100_SXM5):
        s2 = GPUResidentSolver(dev)
        s2.upload(pos, {"m": mass, "h": np.full(n, h)})
        r = s2.run_interaction_list(kern, leaves, ilist)
        wall = r.counters.flops / (0.3 * dev.peak_fp32_flops)  # 30%-of-peak run
        print(f"  {dev.vendor:<7} pass: {r.counters.flops / 1e6:7.1f} MFLOP -> "
              f"utilization {r.utilization(dev, wall) * 100:.0f}% at that pace")


if __name__ == "__main__":
    main()
