#!/usr/bin/env python
"""Frontier-E at full scale: the exascale campaign through the models.

Walks the simulated exascale substrate end-to-end: the Frontier machine
description, scaling projections, the 625-step campaign (time-to-solution
breakdown, I/O trace), device utilization across redshift, and the fault
tolerance story — printing every headline number of the paper alongside
the model's value.

Run:  python examples/frontier_e_campaign.py
"""

import numpy as np

from repro.gpusim import MI250X_GCD, peak_utilization, sustained_utilization
from repro.iosim import simulate_run_with_faults, young_daly_interval
from repro.perfmodel import (
    CampaignModel,
    figure4_table,
    frontier,
    hydro_vs_gravity_cost_ratio,
    machine_flop_rates,
    rank_utilization_samples,
)


def main():
    # --- the machine ---------------------------------------------------------
    m = frontier()
    print("=" * 70)
    print(f"Machine: {m.name} | {m.n_nodes} nodes x {m.gpus_per_node} GCDs "
          f"({m.device.name})")
    print(f"  theoretical peak: {m.peak_fp32_eflops:.3f} EFLOPs FP32 "
          f"(paper: 1.720)")
    print(f"  aggregate NVMe write: {m.aggregate_nvme_write_tbps:.0f} TB/s "
          f"(paper: 36)")

    # --- scaling (Fig. 4) ----------------------------------------------------
    print("\nScaling 128 -> 9,000 nodes:")
    for p in figure4_table():
        print(f"  {p.n_nodes:>5} nodes | weak {p.weak_particles_per_sec:.2e} "
              f"part/s ({p.weak_efficiency * 100:4.1f}%) | "
              f"strong {p.strong_seconds_per_step:6.2f} s/step "
              f"({p.strong_efficiency * 100:4.1f}%)")
    rates = machine_flop_rates()
    print(f"  Frontier-E: peak {rates['peak_pflops']:.1f} PFLOPs (513.1), "
          f"sustained {rates['sustained_pflops']:.1f} PFLOPs (420.5)")

    # --- the campaign (Figs. 2 & 5) -------------------------------------------
    print("\nCampaign: 625 PM steps, z = 49 -> 0")
    result = CampaignModel(machine=m).run()
    print(f"  wall clock:      {result.wallclock_hours:.1f} h (paper: 196)")
    print(f"  node-hours:      {result.node_hours / 1e6:.2f}M (paper: ~1.7M)")
    print(f"  data written:    {result.total_data_pb:.1f} PB (paper: >100)")
    print(f"  effective I/O:   {result.effective_io_tbps:.2f} TB/s "
          f"(paper: 5.45; Orion peak 4.6)")
    print(f"  GPU residency:   {result.gpu_resident_fraction * 100:.1f}% "
          f"(paper: 91.2%)")
    print("  TTS fractions (model | paper):")
    paper = {"short_range": 79.6, "analysis": 11.6, "io": 2.6,
             "long_range": 1.7, "tree_build": 1.7, "other": 2.8}
    for k, v in result.fractions.items():
        print(f"    {k:<12} {v * 100:5.1f}% | {paper[k]:5.1f}%")

    ratio = hydro_vs_gravity_cost_ratio(m)
    print(f"  gravity-only comparison: {ratio['gravity_only_hours']:.1f} h "
          f"-> hydro is {ratio['ratio']:.1f}x more expensive (paper: ~16x)")

    # --- utilization across redshift (Fig. 6) -----------------------------------
    print("\nDevice utilization (MI250X GCD):")
    print(f"  peak kernel:        {peak_utilization(MI250X_GCD) * 100:.1f}% "
          f"(paper: ~33%)")
    print(f"  sustained (high z): {sustained_utilization(MI250X_GCD) * 100:.1f}% "
          f"(paper: 26.5%)")
    for phase, a, flat in (("high z", 0.1, False), ("low z", 1.0, False),
                           ("low z Flat", 1.0, True)):
        d = rank_utilization_samples(MI250X_GCD, a=a, n_ranks=9000, flat=flat)
        print(f"  {phase:<12} mean {d.mean() * 100:5.1f}%  "
              f"spread (std) {d.std() * 100:4.2f}%")

    # --- fault tolerance ----------------------------------------------------------
    print("\nFault tolerance under MTTI = 3 h:")
    for tau in (0.31, 4.0, 24.0):
        stats = simulate_run_with_faults(
            total_work_hours=196.0, checkpoint_interval_hours=tau,
            checkpoint_cost_hours=30.0 / 3600.0, mtti_hours=3.0,
            rng=np.random.default_rng(1), max_wallclock_hours=1e6,
        )
        print(f"  checkpoint every {tau:5.2f} h -> wallclock "
              f"{stats.wallclock_hours:7.1f} h, {stats.n_interrupts} interrupts, "
              f"{stats.efficiency * 100:4.1f}% efficiency")
    print(f"  Young/Daly optimum: {young_daly_interval(30.0 / 3600.0, 3.0):.2f} h"
          f" -> per-step checkpointing is the right call")
    print("=" * 70)


if __name__ == "__main__":
    main()
