#!/usr/bin/env python
"""Zel'dovich pancake: single-mode gravitational collapse test.

A classic cosmological code validation: a single sinusoidal perturbation
evolves analytically under the Zel'dovich approximation until the first
shell crossing at a_cross.  Before crossing, the simulation must track the
analytic displacement and velocity; at crossing, a caustic (density spike)
forms.  This exercises the PM + short-range gravity stack against an exact
nonlinear solution.

Run:  python examples/zeldovich_pancake.py
"""

import numpy as np

from repro.core.particles import Particles
from repro.core.simulation import Simulation, SimulationConfig
from repro.cosmology import Cosmology


def main():
    # Einstein-de Sitter background (D(a) = a exactly -> clean analytics)
    eds = Cosmology(omega_m=1.0, omega_b=0.05, omega_r=0.0, h=0.7)
    box = 64.0  # Mpc/h
    n = 16  # particles per dimension
    a_init = 0.05
    a_cross = 0.5  # chosen shell-crossing scale factor

    # Zel'dovich: x = q + D(a) psi(q), psi = -A sin(k q), crossing when
    # D A k = 1  ->  A = 1/(a_cross k)
    k = 2.0 * np.pi / box
    amp = 1.0 / (a_cross * k)

    spacing = box / n
    coords = (np.arange(n) + 0.5) * spacing
    qx, qy, qz = np.meshgrid(coords, coords, coords, indexing="ij")
    q = np.stack([qx, qy, qz], axis=-1).reshape(-1, 3)

    d0 = a_init  # EdS growth factor
    psi = -amp * np.sin(k * q[:, 0])
    pos = q.copy()
    pos[:, 0] = np.mod(q[:, 0] + d0 * psi, box)
    # peculiar velocity v = a H f D psi; EdS: f = 1
    h_a = eds.hubble(a_init)
    vel = np.zeros_like(pos)
    vel[:, 0] = a_init * h_a * d0 * psi

    pmass = eds.rho_mean0 * box**3 / n**3
    parts = Particles(
        pos=pos, vel=vel, mass=np.full(n**3, pmass),
        species=np.zeros(n**3, dtype=np.int8),
    )

    a_end = 0.4  # stop before shell crossing for the analytic comparison
    cfg = SimulationConfig(
        box=box, pm_grid=32, a_init=a_init, a_final=a_end, n_pm_steps=12,
        cosmo=eds, hydro=False, gravity=True, max_rung=1,
        softening_cells=0.02,
    )
    sim = Simulation(cfg, parts)
    print(f"Zel'dovich pancake: {n}^3 particles, crossing at a = {a_cross}")
    print(f"evolving a = {a_init} -> {a_end} ({cfg.n_pm_steps} PM steps)...")
    sim.run()

    # analytic comparison at a_end
    p = sim.particles
    d1 = a_end
    x_exact = np.mod(q[:, 0] + d1 * psi, box)
    v_exact = a_end * eds.hubble(a_end) * d1 * psi

    dx = p.pos[:, 0] - x_exact
    dx -= box * np.round(dx / box)
    x_rms = np.sqrt(np.mean(dx**2))
    dv = p.vel[:, 0] - v_exact
    v_rms = np.sqrt(np.mean(dv**2))
    disp_rms = np.sqrt(np.mean((d1 * psi) ** 2))
    vel_rms = np.sqrt(np.mean(v_exact**2))
    print(f"\nposition error: {x_rms:.3f} Mpc/h rms "
          f"({x_rms / disp_rms * 100:.1f}% of the displacement amplitude)")
    print(f"velocity error: {v_rms:.2f} km/s rms "
          f"({v_rms / vel_rms * 100:.1f}% of the velocity amplitude)")
    print(f"transverse drift (should be ~0): "
          f"{np.abs(p.pos[:, 1] - q[:, 1]).max():.2e} Mpc/h")

    assert x_rms / disp_rms < 0.1, "pancake displacement error too large"
    assert v_rms / vel_rms < 0.15, "pancake velocity error too large"
    print("\nPASS: simulation tracks the Zel'dovich solution to crossing.")


if __name__ == "__main__":
    main()
