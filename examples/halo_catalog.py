#!/usr/bin/env python
"""Halo finding and clustering statistics: the in situ analysis pipeline.

Evolves a gravity-only box into the clustered regime, then runs the
GPU-pipeline analogs on the result: FOF halo finding (union-find over
chaining-mesh neighbor lists), the halo mass function against the
Press-Schechter prediction, DBSCAN substructure in the densest halo, and
the measured matter power spectrum against linear theory.

Run:  python examples/halo_catalog.py
"""

import numpy as np

from repro.analysis import (
    dbscan,
    fof_halos,
    halo_mass_function,
    measure_power_spectrum,
    press_schechter_mass_function,
)
from repro.core.particles import Particles
from repro.core.simulation import Simulation, SimulationConfig
from repro.cosmology import PLANCK18, LinearPower, zeldovich_ics


def main():
    box, n = 50.0, 14
    a0, a1 = 0.2, 0.8
    print(f"Gravity-only run: {n**3} particles, {box} Mpc/h box, "
          f"z = {1/a0 - 1:.0f} -> {1/a1 - 1:.2f}")

    ics = zeldovich_ics(n, box, PLANCK18, a_init=a0, seed=7)
    parts = Particles(
        pos=ics.positions, vel=ics.velocities,
        mass=np.full(n**3, ics.particle_mass),
        species=np.zeros(n**3, dtype=np.int8),
    )
    cfg = SimulationConfig(
        box=box, pm_grid=28, a_init=a0, a_final=a1, n_pm_steps=8,
        cosmo=PLANCK18, hydro=False, max_rung=2,
    )
    sim = Simulation(cfg, parts)
    sim.run()
    p = sim.particles

    # --- FOF halos -------------------------------------------------------------
    cat = fof_halos(p.pos, p.mass, box, b=0.2, min_members=8)
    print(f"\nFOF (b = 0.2): {cat.n_halos} halos with >= 8 members")
    order = np.argsort(-cat.halo_mass)[:5]
    print("  top halos:")
    for h in order:
        c = cat.halo_center[h]
        print(f"    M = {cat.halo_mass[h]:.2e} Msun/h, {cat.halo_size[h]:>4} "
              f"particles at ({c[0]:.1f}, {c[1]:.1f}, {c[2]:.1f}) Mpc/h")

    # --- mass function vs Press-Schechter ---------------------------------------
    if cat.n_halos >= 5:
        centers, dn, counts = halo_mass_function(cat.halo_mass, box, n_bins=5)
        ps = press_schechter_mass_function(centers, PLANCK18, a=a1)
        print("\nHalo mass function dn/dlnM [(Mpc/h)^-3]:")
        print(f"  {'M [Msun/h]':>12} {'measured':>10} {'Press-Schechter':>16} {'N':>4}")
        for m, d, s, c in zip(centers, dn, ps, counts):
            print(f"  {m:12.2e} {d:10.2e} {s:16.2e} {c:4d}")

    # --- substructure in the densest halo with DBSCAN ----------------------------
    if cat.n_halos > 0:
        big = int(np.argmax(cat.halo_mass))
        members = cat.members(big)
        res = dbscan(p.pos[members], eps=0.15 * box / n, min_pts=4, box=box)
        print(f"\nDBSCAN inside the most massive halo: {res.n_clusters} dense "
              f"cores, {int(np.sum(res.labels == -1))} unbound members")

    # --- power spectrum vs linear theory ------------------------------------------
    k, pk = measure_power_spectrum(p.pos, p.mass, box, n_grid=28,
                                   subtract_shot_noise=True)
    lin = LinearPower(PLANCK18)
    sel = np.isfinite(pk) & (k > 0.2) & (k < 0.9)
    print("\nMatter power spectrum vs linear theory:")
    print(f"  {'k [h/Mpc]':>10} {'P_sim':>10} {'P_linear':>10} {'ratio':>6}")
    for ki, pi in zip(k[sel][::3], pk[sel][::3]):
        pl = float(lin(ki, a1))
        print(f"  {ki:10.3f} {pi:10.1f} {pl:10.1f} {pi / pl:6.2f}")
    print("  (ratio > 1 at high k = nonlinear growth, as expected)")


if __name__ == "__main__":
    main()
