#!/usr/bin/env python
"""Sod shock tube: validate CRKSPH against the exact Riemann solution.

Sets up the canonical (rho, v, P) = (1, 0, 1) | (0.125, 0, 0.1) shock tube
as a quasi-1D periodic particle lattice, evolves it with the CRKSPH solver
in static (non-cosmological) mode, and prints the simulated profiles
against the analytic solution — the shock, contact discontinuity, and
rarefaction fan should all land in the right places.

Run:  python examples/sod_shock_tube.py
"""

import numpy as np

from repro.core.particles import Particles, Species
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.sph.eos import IdealGasEOS
from repro.core.sph.riemann import SOD_LEFT, SOD_RIGHT, sample_solution

GAMMA = 1.4


def build_tube(d=1.0 / 24.0, width_cells=6):
    """Double shock tube in a periodic 2 x w x w box (dense slab centered)."""
    w = width_cells * d

    def lattice(x_lo, x_hi, spacing):
        nx = int(round((x_hi - x_lo) / spacing))
        ny = int(round(w / spacing))
        xs = x_lo + (np.arange(nx) + 0.5) * spacing
        ys = (np.arange(ny) + 0.5) * spacing
        g = np.meshgrid(xs, ys, ys, indexing="ij")
        return np.stack([c.ravel() for c in g], axis=-1)

    pos = np.vstack(
        [lattice(0.5, 1.5, d), lattice(0.0, 0.5, 2 * d), lattice(1.5, 2.0, 2 * d)]
    )
    in_dense = (pos[:, 0] >= 0.5) & (pos[:, 0] < 1.5)
    # pressure-consistent start: set u against the solver's own density
    # estimate so the initial pressure is exactly the Sod step (removes the
    # contact startup blip)
    from repro.core.sph import crksph_derivatives, get_kernel
    from repro.tree import neighbor_pairs

    n = len(pos)
    mass = np.full(n, SOD_LEFT.rho * d**3)
    eta = (3.0 * 40 / (4.0 * np.pi)) ** (1.0 / 3.0)
    h = np.where(in_dense, eta * d, eta * 2 * d)
    box = np.array([2.0, w, w])
    pi, pj = neighbor_pairs(pos, h, box=box)
    der = crksph_derivatives(
        pos, np.zeros((n, 3)), mass, np.ones(n), h, pi, pj,
        get_kernel("wendland_c4"), eos=IdealGasEOS(gamma=GAMMA), box=box,
    )
    p_target = np.where(in_dense, SOD_LEFT.p, SOD_RIGHT.p)
    return w, Particles(
        pos=pos,
        vel=np.zeros((n, 3)),
        mass=mass,
        species=np.full(n, int(Species.GAS), dtype=np.int8),
        u=p_target / ((GAMMA - 1.0) * der.rho),
    )


def main():
    t_end = 0.15
    w, particles = build_tube()
    print(f"Sod shock tube: {len(particles)} particles, t_end = {t_end}")

    config = SimulationConfig(
        box=(2.0, w, w), pm_grid=8, a_init=0.0, a_final=t_end, n_pm_steps=15,
        gravity=False, hydro=True, static=True, max_rung=4,
        n_neighbors=40, cfl=0.12,
    )
    sim = Simulation(config, particles)
    sim.eos = IdealGasEOS(gamma=GAMMA)
    for rec in sim.run():
        print(f"  step {rec.step}: t = {rec.a:.3f}, {rec.n_substeps} substeps")

    # compare against the exact solution around the x = 1.5 discontinuity
    p = sim.particles
    sel = (p.pos[:, 0] > 1.05) & (p.pos[:, 0] < 1.95)
    xi = p.pos[sel, 0] - 1.5
    order = np.argsort(xi)
    xi = xi[order]
    rho_sim = p.rho[sel][order]
    v_sim = p.vel[sel, 0][order]
    p_sim = sim.eos.pressure(rho_sim, p.u[sel][order])
    rho_ex, v_ex, p_ex = sample_solution(xi, t_end, gamma=GAMMA)

    print(f"\n{'x':>7} {'rho_sim':>8} {'rho_ex':>8} {'v_sim':>8} {'v_ex':>8} "
          f"{'P_sim':>8} {'P_ex':>8}")
    bins = np.linspace(-0.42, 0.42, 22)
    for lo, hi in zip(bins[:-1], bins[1:]):
        m = (xi >= lo) & (xi < hi)
        if not m.any():
            continue
        print(f"{(lo + hi) / 2:7.3f} {rho_sim[m].mean():8.3f} "
              f"{rho_ex[m].mean():8.3f} {v_sim[m].mean():8.3f} "
              f"{v_ex[m].mean():8.3f} {p_sim[m].mean():8.3f} "
              f"{p_ex[m].mean():8.3f}")

    l1 = np.mean(np.abs(rho_sim - rho_ex))
    print(f"\nL1 density error: {l1:.4f}  "
          f"(SPH smears jumps over ~2 kernel supports)")


if __name__ == "__main__":
    main()
