#!/usr/bin/env python
"""Quickstart: a small end-to-end CRK-HACC-style cosmological run.

Generates Zel'dovich initial conditions for a mixed dark-matter + gas
particle set, evolves it with the full solver stack (spectral PM gravity,
tree short-range forces, CRKSPH hydrodynamics, subgrid astrophysics) from
z = 4 toward z ~ 1.2, runs the in situ analysis pipeline each step, and
writes/validates a checkpoint — the whole public API in ~80 lines.

Run:  python examples/quickstart.py
"""

import tempfile

import numpy as np

from repro.analysis import InSituPipeline
from repro.core.particles import make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig
from repro.cosmology import PLANCK18, zeldovich_ics
from repro.iosim import read_checkpoint, write_checkpoint


def main():
    # --- initial conditions ------------------------------------------------
    box = 20.0  # comoving Mpc/h
    n_per_dim = 8  # 8^3 DM + 8^3 gas particles
    a_init, a_final = 0.20, 0.45

    print(f"Generating {2 * n_per_dim**3} particle ICs in a {box} Mpc/h box...")
    ics = zeldovich_ics(n_per_dim, box, PLANCK18, a_init=a_init, seed=42)
    particles = make_gas_dm_pair(
        ics.positions, ics.velocities, ics.particle_mass,
        PLANCK18.omega_b, PLANCK18.omega_m, u_init=20.0, box=box,
    )

    # --- simulation ----------------------------------------------------------
    config = SimulationConfig(
        box=box,
        pm_grid=16,
        a_init=a_init,
        a_final=a_final,
        n_pm_steps=5,
        cosmo=PLANCK18,
        hydro=True,
        subgrid=True,  # cooling, star formation, SN + AGN feedback
        max_rung=2,
    )
    sim = Simulation(config, particles)
    pipeline = InSituPipeline(n_grid=16, min_members=8)
    sim.insitu_hooks.append(pipeline)

    print(f"Running {config.n_pm_steps} PM steps "
          f"(z = {1/a_init - 1:.1f} -> {1/a_final - 1:.1f})...")
    records = sim.run()
    for record, report in zip(records, pipeline.reports):
        print(
            f"  step {record.step}: a={record.a:.3f} "
            f"substeps={record.n_substeps} halos={report.n_halos} "
            f"stars_formed={record.n_stars_formed} "
            f"clustering_rms={report.clustering_rms:.3f}"
        )

    # --- results ---------------------------------------------------------------
    p = sim.particles
    print("\nFinal state:")
    print(f"  gas particles:   {int(p.gas.sum())}")
    print(f"  star particles:  {int(p.stars.sum())}")
    print(f"  black holes:     {int(p.black_holes.sum())}")
    print(f"  gas temperature: {np.median(sim.eos.temperature(p.u[p.gas])):.2e} K median")
    print(f"  metal mass:      {p.total_metal_mass():.3e} Msun/h")
    frac = sim.timing_fractions()
    print("  time fractions:  "
          + ", ".join(f"{k}={v * 100:.1f}%" for k, v in sorted(
              frac.items(), key=lambda kv: -kv[1]) if v > 0))

    # --- checkpoint round trip ---------------------------------------------------
    with tempfile.NamedTemporaryFile(suffix=".gio") as f:
        nbytes = write_checkpoint(f.name, p, a=sim.a, step=sim.step_index)
        restored, meta = read_checkpoint(f.name)
        assert len(restored) == len(p) and meta["a"] == sim.a
        print(f"\nCheckpoint round trip OK ({nbytes / 1e3:.1f} kB, CRC-validated).")


if __name__ == "__main__":
    main()
